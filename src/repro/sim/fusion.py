"""Basic-block fusion: superblock closures over the decoded program.

:func:`~repro.sim.functional.decode_program` removed per-instruction
*decode* work; this module removes per-instruction *dispatch* work.  At
first use it partitions the text section into basic blocks (straight
-line runs ending at a control instruction or a join point) and
``exec``-compiles one Python function per block that inlines the
functional semantics of every instruction in the block — one call per
block instead of one table lookup + closure call per instruction.

Three flavours are generated, sharing the block layout:

``func``
    ``blk(core) -> next_pc``: architectural state only.  Used by
    :meth:`FunctionalCore.run` and the LPSU-free portions of system
    simulation.
``io``
    ``blk(core, timing, events) -> next_pc``: additionally inlines the
    :class:`~repro.uarch.inorder.InOrderTiming` scoreboard update and
    energy-event accounting for the whole block (static event counts
    are folded into one batched update per block).
``ooo``
    ``blk(core, timing) -> next_pc``: inlines functional semantics and
    feeds the out-of-order model through its
    :meth:`~repro.uarch.ooo.OOOTiming.consume_op` entry point (the OOO
    window state is too dynamic to fold statically).

Every generated function is an exact behavioural replica of the
step-at-a-time path: same architectural updates in the same order, same
cache/predictor access sequence, same stall and energy accounting.
``repro verify --fast-slow`` and the tier-1 suite enforce this
bit-for-bit.  Instructions the generator does not recognize are simply
left out of any block; the drivers fall back to single-stepping them
through the decoded-handler path, so unknown ops degrade gracefully
instead of diverging.
"""

from __future__ import annotations

from ..isa.instructions import FU, Fmt
from .functional import (_ALU_I, _BRANCH, _LOAD_SIZE, _STORE_SIZE, _fp_div,
                         _muldiv)
from .memory import bits_to_f32, f32_to_bits, to_s32, to_u32

#: 0xFFFFFFFF as a decimal literal for emitted source
_M = "4294967295"


def _fsqrt(a):
    fa = bits_to_f32(a)
    return f32_to_bits(fa ** 0.5) if fa >= 0.0 else 0x7FC00000


# ---------------------------------------------------------------------------
# per-mnemonic expression templates ({A}/{B} are register value exprs);
# each mirrors the corresponding decode_instr handler exactly
# ---------------------------------------------------------------------------

_ALU_R_EXPR = {
    "add": "({A} + {B})",
    "addu.xi": "({A} + {B})",
    "sub": "({A} - {B})",
    "and": "({A} & {B})",
    "or": "({A} | {B})",
    "xor": "({A} ^ {B})",
    "sll": "({A} << ({B} & 31))",
    "srl": "({A} >> ({B} & 31))",
    "sra": "(s32({A}) >> ({B} & 31))",
    "slt": "(1 if s32({A}) < s32({B}) else 0)",
    "sltu": "(1 if {A} < {B} else 0)",
}

_FP_R_EXPR = {
    "fadd.s": "f2b(b2f({A}) + b2f({B}))",
    "fsub.s": "f2b(b2f({A}) - b2f({B}))",
    "fmul.s": "f2b(b2f({A}) * b2f({B}))",
    "fdiv.s": "fdivb({A}, {B})",
    "fmin.s": "f2b(min(b2f({A}), b2f({B})))",
    "fmax.s": "f2b(max(b2f({A}), b2f({B})))",
    "flt.s": "(1 if b2f({A}) < b2f({B}) else 0)",
    "fle.s": "(1 if b2f({A}) <= b2f({B}) else 0)",
    "feq.s": "(1 if b2f({A}) == b2f({B}) else 0)",
}

_MULDIV_MNEMONICS = ("mul", "mulh", "div", "divu", "rem", "remu")

_R2_EXPR = {
    "fcvt.s.w": "f2b(float(s32({A})))",
    "fcvt.w.s": "int(b2f({A}))",
    "fsqrt.s": "fsqrtb({A})",
}

_BR_EXPR = {
    "beq": "{A} == {B}",
    "bne": "{A} != {B}",
    "blt": "s32({A}) < s32({B})",
    "bge": "s32({A}) >= s32({B})",
    "bltu": "{A} < {B}",
    "bgeu": "{A} >= {B}",
}


def _alu_i_expr(m, a, imm):
    if m == "addi" or m == "addiu.xi":
        return "(%s + %d)" % (a, imm)
    if m == "andi":
        return "(%s & %d)" % (a, to_u32(imm))
    if m == "ori":
        return "(%s | %d)" % (a, to_u32(imm))
    if m == "xori":
        return "(%s ^ %d)" % (a, to_u32(imm))
    if m == "slti":
        return "(1 if s32(%s) < %d else 0)" % (a, imm)
    if m == "sltiu":
        return "(1 if %s < %d else 0)" % (a, to_u32(imm))
    if m == "slli":
        return "(%s << %d)" % (a, imm & 31)
    if m == "srli":
        return "(%s >> %d)" % (a, imm & 31)
    if m == "srai":
        return "(s32(%s) >> %d)" % (a, imm & 31)
    return None


def emittable(instr):
    """Can this instruction be inlined into a fused block?"""
    op = instr.op
    fmt = op.fmt
    m = op.mnemonic
    if fmt == Fmt.R or fmt == Fmt.XI_R:
        return (m in _ALU_R_EXPR or m in _FP_R_EXPR
                or m in _MULDIV_MNEMONICS)
    if fmt == Fmt.I or fmt == Fmt.I_SHIFT or fmt == Fmt.XI_I:
        return m in _ALU_I
    if fmt == Fmt.R2:
        return m in _R2_EXPR
    if fmt == Fmt.LOAD:
        return m in _LOAD_SIZE
    if fmt == Fmt.STORE:
        return m in _STORE_SIZE
    if fmt == Fmt.BRANCH:
        return m in _BRANCH
    return fmt in (Fmt.AMO, Fmt.XLOOP, Fmt.JAL, Fmt.JALR, Fmt.LUI,
                   Fmt.NONE)


# ---------------------------------------------------------------------------
# block layout
# ---------------------------------------------------------------------------

def block_runs(program, break_pcs=frozenset()):
    """Partition the text section into fusable straight-line runs.

    Returns a list of index lists.  A run starts at every join point
    (program entry, control-flow target, post-control fall-through,
    symbol, and every pc in *break_pcs* — the system simulator passes
    xloop pcs so the dispatch check happens between blocks) and ends at
    the first control instruction.  Unrecognized instructions belong to
    no run; the drivers single-step them.
    """
    instrs = program.instrs
    n = len(instrs)
    base = program.text_base
    leaders = set()
    if n:
        leaders.add(0)
    for i, ins in enumerate(instrs):
        op = ins.op
        if op.is_branch or op.is_xloop or op.is_jump:
            if i + 1 < n:
                leaders.add(i + 1)
            if op.fmt != Fmt.JALR:
                t = ins.pc + ins.imm
                if not t & 3:
                    ti = (t - base) >> 2
                    if 0 <= ti < n:
                        leaders.add(ti)
    for a in program.symbols.values():
        if not a & 3:
            ti = (a - base) >> 2
            if 0 <= ti < n:
                leaders.add(ti)
    for pc in break_pcs:
        ti = (pc - base) >> 2
        if 0 <= ti < n:
            leaders.add(ti)

    runs = []
    cur = []
    for i in range(n):
        if i in leaders and cur:
            runs.append(cur)
            cur = []
        ins = instrs[i]
        if not emittable(ins):
            if cur:
                runs.append(cur)
                cur = []
            continue
        cur.append(i)
        op = ins.op
        if op.is_branch or op.is_xloop or op.is_jump:
            runs.append(cur)
            cur = []
    if cur:
        runs.append(cur)
    return runs


# ---------------------------------------------------------------------------
# code emission
# ---------------------------------------------------------------------------

def _sem_value_expr(ins):
    """Value expression for register-writing compute ops, or None."""
    op = ins.op
    m = op.mnemonic
    fmt = op.fmt
    A = "R[%d]" % ins.rs1
    B = "R[%d]" % ins.rs2
    if fmt == Fmt.R or fmt == Fmt.XI_R:
        t = _ALU_R_EXPR.get(m) or _FP_R_EXPR.get(m)
        if t is not None:
            return t.format(A=A, B=B)
        return "md(%r, %s, %s)" % (m, A, B)
    if fmt == Fmt.I or fmt == Fmt.I_SHIFT or fmt == Fmt.XI_I:
        return _alu_i_expr(m, A, ins.imm)
    if fmt == Fmt.R2:
        return _R2_EXPR[m].format(A=A)
    if fmt == Fmt.LUI:
        return "%d" % to_u32(ins.imm << 12)
    return None


def _emit_sem(out, ins):
    """Append the pure functional statements for a non-control *ins*.

    Mem ops leave the access address in ``_a``.  Mirrors the
    ``decode_instr`` handlers: compute ops with rd == x0 are no-ops
    except R2 (evaluated for exceptions, like the slow path)."""
    op = ins.op
    fmt = op.fmt
    m = op.mnemonic
    rd = ins.rd
    if fmt == Fmt.LOAD:
        size, signed = _LOAD_SIZE[m]
        out.append("_a = (R[%d] + %d) & %s" % (ins.rs1, ins.imm, _M))
        if rd:
            out.append("R[%d] = mem.load(_a, %d, %r)" % (rd, size, signed))
        else:
            out.append("mem.load(_a, %d, %r)" % (size, signed))
        return
    if fmt == Fmt.STORE:
        out.append("_a = (R[%d] + %d) & %s" % (ins.rs1, ins.imm, _M))
        out.append("mem.store(_a, %d, R[%d])"
                   % (_STORE_SIZE[m], ins.rs2))
        return
    if fmt == Fmt.AMO:
        out.append("_a = R[%d]" % ins.rs1)
        if rd:
            out.append("R[%d] = mem.amo(%r, _a, R[%d])" % (rd, m, ins.rs2))
        else:
            out.append("mem.amo(%r, _a, R[%d])" % (m, ins.rs2))
        return
    if fmt == Fmt.NONE:
        return
    expr = _sem_value_expr(ins)
    if rd:
        if fmt == Fmt.LUI:
            out.append("R[%d] = %s" % (rd, expr))
        else:
            out.append("R[%d] = %s & %s" % (rd, expr, _M))
    elif fmt == Fmt.R2:
        out.append(expr)  # may raise (fcvt.w.s on NaN), like slow path


def _ctrl_of(ins):
    """Terminator description for a control *ins*.

    ``("cond", cond_expr, target, fallthrough)`` for branches/xloops,
    ``("jump", target_expr, link_lines)`` for jal/jalr, None otherwise.
    """
    op = ins.op
    fmt = op.fmt
    pc = ins.pc
    A = "R[%d]" % ins.rs1
    B = "R[%d]" % ins.rs2
    if fmt == Fmt.BRANCH:
        cond = _BR_EXPR[op.mnemonic].format(A=A, B=B)
        return ("cond", cond, pc + ins.imm, pc + 4)
    if fmt == Fmt.XLOOP:
        return ("cond", "s32(%s) < s32(%s)" % (A, B), pc + ins.imm, pc + 4)
    if fmt == Fmt.JAL:
        link = []
        if ins.rd:
            link.append("R[%d] = %d" % (ins.rd, to_u32(pc + 4)))
        return ("jump", "%d" % (pc + ins.imm), link)
    if fmt == Fmt.JALR:
        # target is computed before the link write, like decode_instr
        link = ["_t = (R[%d] + %d) & 4294967294" % (ins.rs1, ins.imm)]
        if ins.rd:
            link.append("R[%d] = %d" % (ins.rd, to_u32(pc + 4)))
        return ("jump", "_t", link)
    return None


def _nonzero_srcs(ins):
    """(dedup'd nonzero sources for the scoreboard, raw rf_read count)"""
    srcs = ins.src_regs()
    nz = []
    count = 0
    for s in srcs:
        if s:
            count += 1
            if s not in nz:
                nz.append(s)
    return nz, count


def _gen_func(name, instrs, idxs, lines):
    lines.append("def %s(c):" % name)
    lines.append(" R = c.regs")
    lines.append(" mem = c.mem")
    body = []
    ctrl = None
    for i in idxs:
        ins = instrs[i]
        ctrl = _ctrl_of(ins)
        if ctrl is None:
            _emit_sem(body, ins)
        elif ctrl[0] == "jump":
            body.extend(ctrl[2])
    for ln in body:
        lines.append(" " + ln)
    last = instrs[idxs[-1]]
    if ctrl is None:
        lines.append(" _n = %d" % (last.pc + 4))
    elif ctrl[0] == "cond":
        lines.append(" if %s:" % ctrl[1])
        lines.append("  _n = %d" % ctrl[2])
        lines.append(" else:")
        lines.append("  _n = %d" % ctrl[3])
    else:
        lines.append(" _n = %s" % ctrl[1])
    lines.append(" c.icount += %d" % len(idxs))
    lines.append(" c.pc = _n")
    lines.append(" return _n")
    lines.append("")


def _gen_io(name, instrs, idxs, lines, config):
    """In-order flavour: functional semantics + inlined scoreboard."""
    lat = config.latencies
    hit = config.cache.hit_latency
    pen = config.mispredict_penalty
    has_mem = any(instrs[i].op.is_mem and not instrs[i].op.is_fence
                  for i in idxs)
    has_pred = any(instrs[i].op.is_branch or instrs[i].op.is_xloop
                   for i in idxs)
    has_ctrl = has_pred or any(instrs[i].op.is_jump for i in idxs)
    has_srcs = any(_nonzero_srcs(instrs[i])[0] for i in idxs)

    lines.append("def %s(c, t, ev):" % name)
    lines.append(" R = c.regs")
    lines.append(" mem = c.mem")
    lines.append(" rr = t.reg_ready")
    lines.append(" cyc = t.cycle")
    if has_mem:
        lines.append(" cache = t.cache")
        lines.append(" smem = 0")
        lines.append(" dcm = 0")
    if has_pred:
        lines.append(" pred = t.predictor")
    if has_srcs:
        lines.append(" sraw = 0")
    if has_ctrl:
        lines.append(" sbr = 0")

    n_rf_read = n_rf_write = n_bpred = n_mem = 0
    fu_counts = {}
    ctrl = None

    for i in idxs:
        ins = instrs[i]
        op = ins.op
        nz, raw_count = _nonzero_srcs(ins)
        n_rf_read += raw_count
        if ins.dst_reg() is not None:
            n_rf_write += 1
        fu = op.fu
        if fu == FU.BR or fu == FU.XLOOP:
            fu_counts["alu_op"] = fu_counts.get("alu_op", 0) + 1
        elif fu == FU.ALU:
            fu_counts["alu_op"] = fu_counts.get("alu_op", 0) + 1
        elif fu == FU.MUL:
            fu_counts["mul_op"] = fu_counts.get("mul_op", 0) + 1
        elif fu == FU.DIV:
            fu_counts["div_op"] = fu_counts.get("div_op", 0) + 1
        elif fu == FU.FPU:
            fu_counts["fpu_op"] = fu_counts.get("fpu_op", 0) + 1
        elif fu == FU.FDIV:
            fu_counts["fdiv_op"] = fu_counts.get("fdiv_op", 0) + 1

        # issue cycle: max(cyc, reg_ready[srcs])
        if not nz:
            issue = "cyc"
        else:
            issue = "_i"
            lines.append(" _i = rr[%d]" % nz[0])
            for s in nz[1:]:
                lines.append(" _x = rr[%d]" % s)
                lines.append(" if _x > _i: _i = _x")
            lines.append(" if _i < cyc: _i = cyc")
            lines.append(" sraw += _i - cyc")

        ctrl = _ctrl_of(ins)
        dst = ins.dst_reg()

        if op.is_mem and not op.is_fence:
            n_mem += 1
            body = []
            _emit_sem(body, ins)
            for ln in body:
                lines.append(" " + ln)
            lines.append(" _x = cache.access(_a, %r)" % bool(op.is_store))
            if op.is_amo:
                if dst is not None:
                    lines.append(" rr[%d] = %s + %d + _x"
                                 % (dst, issue, lat.amo - hit))
            elif op.is_load:
                if dst is not None:
                    lines.append(" rr[%d] = %s + _x" % (dst, issue))
            else:
                pass  # store writes no register
            lines.append(" if _x > %d:" % hit)
            lines.append("  dcm += 1")
            lines.append("  smem += _x - %d" % hit)
            lines.append(" cyc = %s + 1" % issue)
        elif ctrl is None:
            body = []
            _emit_sem(body, ins)
            for ln in body:
                lines.append(" " + ln)
            if dst is not None:
                if fu in (FU.MUL, FU.DIV, FU.FPU, FU.FDIV):
                    latency = lat.for_fu(fu)
                else:
                    latency = 1
                lines.append(" rr[%d] = %s + %d" % (dst, issue, latency))
            lines.append(" cyc = %s + 1" % issue)
        elif ctrl[0] == "cond":
            n_bpred += 1
            lines.append(" if %s:" % ctrl[1])
            lines.append("  _n = %d" % ctrl[2])
            lines.append("  if pred.predict_and_update(%d, True):"
                         % ins.pc)
            lines.append("   cyc = %s + %d" % (issue, 1 + pen))
            lines.append("   sbr += %d" % pen)
            lines.append("  else:")
            lines.append("   cyc = %s + 1" % issue)
            lines.append(" else:")
            lines.append("  _n = %d" % ctrl[3])
            lines.append("  if pred.predict_and_update(%d, False):"
                         % ins.pc)
            lines.append("   cyc = %s + %d" % (issue, 1 + pen))
            lines.append("   sbr += %d" % pen)
            lines.append("  else:")
            lines.append("   cyc = %s + 1" % issue)
        else:  # jump (jal / jalr / xloop.break)
            for ln in ctrl[2]:
                lines.append(" " + ln)
            if dst is not None:
                lines.append(" rr[%d] = %s + 1" % (dst, issue))
            lines.append(" _n = %s" % ctrl[1])
            lines.append(" cyc = %s + 2" % issue)
            lines.append(" sbr += 1")

    last = instrs[idxs[-1]]
    if ctrl is None:
        lines.append(" _n = %d" % (last.pc + 4))
    lines.append(" t.cycle = cyc")
    if has_srcs:
        lines.append(" t.stall_raw += sraw")
    if has_mem:
        lines.append(" t.stall_mem += smem")
    if has_ctrl:
        lines.append(" t.stall_branch += sbr")
    lines.append(" t.retired += %d" % len(idxs))
    lines.append(" c.icount += %d" % len(idxs))
    lines.append(" c.pc = _n")
    lines.append(" ev.ic_access += %d" % len(idxs))
    if n_rf_read:
        lines.append(" ev.rf_read += %d" % n_rf_read)
    if n_rf_write:
        lines.append(" ev.rf_write += %d" % n_rf_write)
    for field, count in sorted(fu_counts.items()):
        lines.append(" ev.%s += %d" % (field, count))
    if n_mem:
        lines.append(" ev.dc_access += %d" % n_mem)
        lines.append(" ev.dc_miss += dcm")
    if n_bpred:
        lines.append(" ev.bpred += %d" % n_bpred)
    lines.append(" return _n")
    lines.append("")


def _gen_ooo(name, instrs, idxs, lines):
    """OOO flavour: inline semantics, feed timing via consume_op."""
    lines.append("def %s(c, t):" % name)
    lines.append(" R = c.regs")
    lines.append(" mem = c.mem")
    lines.append(" co = t.consume_op")
    ctrl = None
    for i in idxs:
        ins = instrs[i]
        op = ins.op
        ctrl = _ctrl_of(ins)
        iname = "I%d" % i
        if ctrl is None:
            body = []
            _emit_sem(body, ins)
            for ln in body:
                lines.append(" " + ln)
            addr = "_a" if (op.is_mem and not op.is_fence) else "None"
            lines.append(" co(%s, %d, %s, False)" % (iname, ins.pc, addr))
        elif ctrl[0] == "cond":
            lines.append(" if %s:" % ctrl[1])
            lines.append("  _n = %d" % ctrl[2])
            lines.append("  co(%s, %d, None, True)" % (iname, ins.pc))
            lines.append(" else:")
            lines.append("  _n = %d" % ctrl[3])
            lines.append("  co(%s, %d, None, False)" % (iname, ins.pc))
        else:
            for ln in ctrl[2]:
                lines.append(" " + ln)
            lines.append(" _n = %s" % ctrl[1])
            lines.append(" co(%s, %d, None, True)" % (iname, ins.pc))
    last = instrs[idxs[-1]]
    if ctrl is None:
        lines.append(" _n = %d" % (last.pc + 4))
    lines.append(" c.icount += %d" % len(idxs))
    lines.append(" c.pc = _n")
    lines.append(" return _n")
    lines.append("")


# ---------------------------------------------------------------------------
# build + cache
# ---------------------------------------------------------------------------

def _build(program, flavor, break_pcs, config):
    instrs = program.instrs
    runs = block_runs(program, break_pcs)
    ns = {
        "s32": to_s32,
        "f2b": f32_to_bits,
        "b2f": bits_to_f32,
        "md": _muldiv,
        "fdivb": _fp_div,
        "fsqrtb": _fsqrt,
    }
    lines = []
    names = []
    for idxs in runs:
        name = "_b%d" % idxs[0]
        names.append(name)
        if flavor == "func":
            _gen_func(name, instrs, idxs, lines)
        elif flavor == "io":
            _gen_io(name, instrs, idxs, lines, config)
        elif flavor == "ooo":
            for i in idxs:
                ns["I%d" % i] = instrs[i]
            _gen_ooo(name, instrs, idxs, lines)
        else:
            raise ValueError("unknown fusion flavor %r" % flavor)
    src = "\n".join(lines)
    code = compile(src, "<fused:%s>" % flavor, "exec")
    exec(code, ns)
    return {instrs[idxs[0]].pc: ns[name]
            for idxs, name in zip(runs, names)}


#: compiled block tables shared across program *objects* by content.
#: ``func``/``io`` closures bind nothing program-specific (PCs are
#: literals, state arrives via the core/timing arguments), so two
#: recompiles of the same kernel — e.g. repeated cold runs after
#: ``clear_cache`` — can reuse one compiled table.  ``ooo`` binds
#: per-program instruction objects and stays per-program.
_BLOCK_TABLE_CACHE = {}


def _program_content(program):
    return tuple((ins.op.mnemonic, ins.rd, ins.rs1, ins.rs2, ins.imm,
                  ins.pc) for ins in program.instrs)


def fused_blocks(program, flavor="func", break_pcs=(), config=None):
    """PC-indexed dict of fused block functions, cached on *program*.

    *config* (a :class:`~repro.uarch.params.GPPConfig`) is required for
    the ``io`` flavour, whose latencies/penalties are folded into the
    generated code.
    """
    bk = frozenset(break_pcs)
    if flavor == "io":
        ck = (config.mispredict_penalty, repr(config.latencies),
              repr(config.cache))
    else:
        ck = None
    key = (flavor, bk, ck)
    cache = getattr(program, "_fused", None)
    if cache is None:
        cache = program._fused = {}
    tbl = cache.get(key)
    if tbl is None:
        if flavor == "ooo":
            tbl = _build(program, flavor, bk, config)
        else:
            mk = (flavor, bk, ck, _program_content(program))
            shared = _BLOCK_TABLE_CACHE.get(mk)
            if shared is None:
                shared = _BLOCK_TABLE_CACHE[mk] = \
                    _build(program, flavor, bk, config)
            # per-program copy: callers may prune entries to force the
            # single-step fallback
            tbl = dict(shared)
        cache[key] = tbl
    return tbl


# ---------------------------------------------------------------------------
# LPSU fused-lane engine (`lpsu` flavour)
# ---------------------------------------------------------------------------

#: chained-op budget per generated issue-slot call.  Stopping a chain
#: at any point is schedule-identical (the per-cycle loop takes over
#: at the same virtual cycle), so this only bounds the latency of one
#: step call, like the interpreted batch loop's 65536 cap.
_LPSU_CHAIN_CAP = 50000

#: straight-line ops emitted per chain entry before handing back to
#: the dispatcher.  Every slot is a potential chain entry (a RAW break
#: can stop a chain anywhere), so uncapped emission is quadratic in
#: body size; capping only costs one dispatcher round-trip per CAP
#: chained ops and keeps codegen linear-ish.  Steady-state inner loops
#: are unaffected: they run in one shared compiled while per
#: back-branch, emitted once.
_LPSU_PREFIX_CAP = 16

#: compiled `make` factories keyed by loop/config *content*, so
#: recompiling the same kernel (cold sweeps, repeated cold runs)
#: reuses the generated engine instead of re-emitting + re-compiling
#: it.  Safe because generated code depends only on the key below and
#: binds all live state per-LPSU inside make().
_LPSU_MAKE_CACHE = {}


class _LPSUGen:
    """Emit a ``make(lpsu) -> step`` factory for one xloop body.

    ``step(ctx, cycle)`` is a drop-in replacement for
    :meth:`repro.uarch.lpsu.LPSU._step` on non-recording cycles: every
    per-instruction fact the interpreted path resolves per cycle
    (operand registers, issue class, latency, CIR/LSQ/bound flags, LSQ
    capacities, memory-port count, cache hit latency, byte-level
    memory access) is folded into generated code — one function per
    instruction-buffer slot, with the in-lane superblock chain
    unrolled across the slot's static successors, including a compiled
    ``while`` loop over straight-line inner-loop bodies.  Iteration
    turnover, CIB waits, LSQ drains, commit and squash stay on the
    interpreted helpers: the generated code calls straight back into
    the LPSU for them, which is what keeps fast and slow bit-identical.
    """

    def __init__(self, descriptor, lpsu_cfg, gpp_cfg):
        d = descriptor
        self.body = d.body
        self.n = len(d.body)
        self.base = d.body_start_pc
        self.cirs = d.cirs
        self.bound_reg = d.bound_reg
        self.ordered = d.kind.data.ordered_through_registers
        self.squash = d.kind.data.needs_memory_disambiguation
        self.needs_lsq = self.squash or d.kind.control.value == "de"
        self.dyn_bound = d.kind.control.value == "db"
        self.cfg = lpsu_cfg
        self.lat = gpp_cfg.latencies
        self.hit = gpp_cfg.cache.hit_latency
        self.pen = lpsu_cfg.branch_penalty
        self.ilf = lpsu_cfg.inter_lane_forwarding
        # per-slot statics (mirrors LPSU._build_meta / _fusable)
        self.kind = []
        self.latency = []
        self.occupy = []
        self.nz_srcs = []
        self.dst = []
        self.has_cir = []
        self.pub = []
        self.bound_dst = []
        self.branchy = []
        self.fusable = []
        self.cir_srcs = []
        for ins in d.body:
            op = ins.op
            srcs = ins.src_regs()
            dst = ins.dst_reg()
            if op.is_mem and not op.is_fence:
                kind, latency, occupy = 1, 0, 0
            elif op.is_llfu:
                kind = 2
                latency = self.lat.for_fu(op.fu)
                occupy = latency if op.fu in (FU.DIV, FU.FDIV) else 1
            else:
                kind, latency, occupy = 0, 1, 0
            csrcs = []
            if self.ordered:
                for s in srcs:
                    if s in self.cirs and s not in csrcs:
                        csrcs.append(s)
            pub = (self.ordered and dst is not None
                   and dst in self.cirs)
            bound_dst = self.dyn_bound and dst == d.bound_reg
            nz = []
            for s in srcs:
                if s and s not in nz:
                    nz.append(s)
            self.kind.append(kind)
            self.latency.append(latency)
            self.occupy.append(occupy)
            self.nz_srcs.append(nz)
            self.dst.append(dst)
            self.has_cir.append(bool(csrcs))
            self.cir_srcs.append(csrcs)
            self.pub.append(pub)
            self.bound_dst.append(bound_dst)
            self.branchy.append(op.is_branch or op.is_jump
                                or op.is_xloop)
            self.fusable.append(kind == 0 and not csrcs and not pub
                                and not bound_dst)
        # compiled-while inner loops: a fusable back-branch whose whole
        # taken-path body is straight-line fusable compute gets one
        # shared loop function, emitted once and called from chains
        self.loop_terms = {}
        for term in range(self.n):
            if not (self.fusable[term] and self.branchy[term]):
                continue
            if self.body[term].op.fmt not in (Fmt.BRANCH, Fmt.XLOOP):
                continue
            ti = self._target(term)
            if (0 <= ti <= term
                    and all(self.fusable[x] and not self.branchy[x]
                            for x in range(ti, term))):
                self.loop_terms[term] = ti

    # -- small emission helpers -------------------------------------------

    def _target(self, i):
        """Instruction-buffer slot index of slot *i*'s branch target."""
        ins = self.body[i]
        return (ins.pc + ins.imm - self.base) >> 2

    def _raw_stall(self, out, ind, i):
        """First-op RAW hazard check: stall + give up the issue slot."""
        srcs = self.nz_srcs[i]
        if not srcs:
            return
        out.append(ind + "_w = ready[%d]" % srcs[0])
        for s in srcs[1:]:
            out.append(ind + "_t = ready[%d]" % s)
            out.append(ind + "if _t > _w:")
            out.append(ind + " _w = _t")
        # inline ``_stall``: _w > cycle already implies the
        # max(until, cycle + 1) clamp is a no-op, and recording/trace
        # are inactive under engine gating
        out.append(ind + "if _w > cycle:")
        out.append(ind + " ctx.ready_at = _w")
        out.append(ind + " st.stall_raw += _w - cycle")
        out.append(ind + " return False")

    def _raw_break(self, out, ind, i):
        """Chained-op RAW check: end the chain at slot *i*."""
        for s in self.nz_srcs[i]:
            out.append(ind + "if ready[%d] > c:" % s)
            out.append(ind + " _i = %d" % i)
            out.append(ind + " break")

    def _sem(self, out, ind, i):
        tmp = []
        _emit_sem(tmp, self.body[i])
        for ln in tmp:
            out.append(ind + ln)

    def _emit_cirs(self, out, ind, i):
        """Inline ``LPSU._deliver_cirs`` for slot *i*'s static CIR
        sources: the first read of each CIR this iteration waits for
        the previous iteration's value in the CIB."""
        for s in self.cir_srcs[i]:
            out.append(ind + "if %d not in ctx.received_cirs:" % s)
            out.append(ind + " _ch = cib.get((%d, ctx.k))" % s)
            out.append(ind + " if _ch is None or _ch[0] > cycle:")
            out.append(ind + "  _r = cycle + 1 if _ch is None"
                             " else _ch[0]")
            out.append(ind + "  ctx.ready_at = _r")
            out.append(ind + "  st.stall_cib += _r - cycle")
            out.append(ind + "  return False")
            out.append(ind + " R[%d] = _ch[1]" % s)
            out.append(ind + " ctx.received_cirs[%d] = _ch[1]" % s)
            out.append(ind + " ready[%d] = cycle" % s)
            out.append(ind + " ev.cib_read += 1")
            out.append(ind + " ev.rf_write += 1")

    def _emit_publish(self, out, ind, dst, time_expr):
        """Inline ``LPSU._publish_cir`` (monitor is None by engine
        gating)."""
        out.append(ind + "cib[(%d, ctx.k + 1)] = (%s, R[%d])"
                   % (dst, time_expr, dst))
        out.append(ind + "ev.cib_write += 1")

    def _chain_op(self, out, ind, i):
        """One chained single-cycle compute op at virtual cycle ``c``."""
        self._raw_break(out, ind, i)
        self._sem(out, ind, i)
        out.append(ind + "counts[%d] += 1" % i)
        out.append(ind + "_n += 1")
        if self.dst[i] is not None:
            out.append(ind + "ready[%d] = c + 1" % self.dst[i])
        out.append(ind + "c += 1")

    def _cond_expr(self, i):
        ins = self.body[i]
        A = "R[%d]" % ins.rs1
        B = "R[%d]" % ins.rs2
        if ins.op.fmt == Fmt.XLOOP:
            return "s32(%s) < s32(%s)" % (A, B)
        return _BR_EXPR[ins.op.mnemonic].format(A=A, B=B)

    # -- chain planning / emission ----------------------------------------

    def _chain_plan(self, j):
        """Chainable successors of a compute op: ``(run, term)`` where
        *run* is the straight-line fusable prefix starting at slot *j*
        and *term* is a trailing fusable control op (or None when the
        chain just runs out).  Returns None when no chain is possible."""
        n = self.n
        if not (0 <= j < n) or not self.fusable[j]:
            return None
        run = []
        k = j
        while 0 <= k < n and self.fusable[k] and not self.branchy[k]:
            run.append(k)
            k += 1
        term = k if (0 <= k < n and self.fusable[k]
                     and self.branchy[k]) else None
        if not run and term is None:
            return None
        return run, term, k

    def _emit_term_branch(self, out, ind, term):
        """A conditional that ends a (non-loop) chain segment."""
        self._raw_break(out, ind, term)
        out.append(ind + "counts[%d] += 1" % term)
        out.append(ind + "_n += 1")
        out.append(ind + "c += 1")
        out.append(ind + "if %s:" % self._cond_expr(term))
        out.append(ind + " _br += %d" % self.pen)
        out.append(ind + " c += %d" % self.pen)
        out.append(ind + " _i = %d" % self._target(term))
        out.append(ind + "else:")
        out.append(ind + " _i = %d" % (term + 1))
        out.append(ind + "break")

    def _emit_term_jump(self, out, ind, term):
        """An unconditional control op ends the chain."""
        ins = self.body[term]
        self._raw_break(out, ind, term)
        if ins.op.is_xbreak:
            out.append(ind + "ctx.exit_flag = True")
        if ins.op.fmt == Fmt.JALR:
            out.append(ind + "_j = (R[%d] + %d) & 4294967294"
                       % (ins.rs1, ins.imm))
        if ins.rd:
            out.append(ind + "R[%d] = %d" % (ins.rd,
                                             to_u32(ins.pc + 4)))
            out.append(ind + "ready[%d] = c + 1" % ins.rd)
        out.append(ind + "counts[%d] += 1" % term)
        out.append(ind + "_n += 1")
        out.append(ind + "c += 1")
        out.append(ind + "_br += %d" % self.pen)
        out.append(ind + "c += %d" % self.pen)
        if ins.op.fmt == Fmt.JALR:
            out.append(ind + "_i = (_j - %d) >> 2" % self.base)
        else:
            out.append(ind + "_i = %d" % self._target(term))
        out.append(ind + "break")

    def _emit_loop_fn(self, out, term, ti):
        """One shared compiled ``while`` per inner back-branch,
        emitted once and called from every chain that reaches the loop
        head.  Returns ``(c, next_i, _n, branch_stall)``; any RAW
        break hands the stalling slot back to the dispatcher."""
        out.append(" def _w%d(ctx, c, _n):" % term)
        ind = "  "
        out.append(ind + "R = ctx.regs")
        out.append(ind + "ready = ctx.ready")
        out.append(ind + "_br = 0")
        out.append(ind + "while 1:")
        i1 = ind + " "
        out.append(i1 + "if _n > %d:" % _LPSU_CHAIN_CAP)
        out.append(i1 + " return (c, %d, _n, _br)" % ti)
        for s in range(ti, term):
            for src in self.nz_srcs[s]:
                out.append(i1 + "if ready[%d] > c:" % src)
                out.append(i1 + " return (c, %d, _n, _br)" % s)
            self._sem(out, i1, s)
            out.append(i1 + "counts[%d] += 1" % s)
            out.append(i1 + "_n += 1")
            if self.dst[s] is not None:
                out.append(i1 + "ready[%d] = c + 1" % self.dst[s])
            out.append(i1 + "c += 1")
        for src in self.nz_srcs[term]:
            out.append(i1 + "if ready[%d] > c:" % src)
            out.append(i1 + " return (c, %d, _n, _br)" % term)
        out.append(i1 + "counts[%d] += 1" % term)
        out.append(i1 + "_n += 1")
        out.append(i1 + "c += 1")
        out.append(i1 + "if %s:" % self._cond_expr(term))
        out.append(i1 + " _br += %d" % self.pen)
        out.append(i1 + " c += %d" % self.pen)
        out.append(i1 + " continue")
        out.append(i1 + "return (c, %d, _n, _br)" % (term + 1))

    def _emit_chain(self, out, ind, plan):
        """Superblock chain over *plan*.  All exits assign ``_i`` (the
        next pc index) and leave ``c`` at the context's next ready
        cycle — exactly the interpreted batch loop's contract.
        Straight-line emission is capped at ``_LPSU_PREFIX_CAP`` ops;
        a truncated chain simply re-enters through the next slot's own
        chain, which is schedule-identical."""
        run, term, k = plan
        out.append(ind + "while 1:")
        i1 = ind + " "
        cap = _LPSU_PREFIX_CAP
        loop_ti = self.loop_terms.get(term) if term is not None else None
        j = run[0] if run else term
        if loop_ti is not None and loop_ti > j:
            # entering above the loop head: straight-line down to it
            prefix = run[:loop_ti - j]
            if len(prefix) > cap:
                prefix, term = prefix[:cap], None
                k = prefix[-1] + 1
                loop_ti = None
            else:
                for s in prefix:
                    self._chain_op(out, i1, s)
                out.append(i1 + "c, _i, _n, _b = _w%d(ctx, c, _n)"
                           % term)
                out.append(i1 + "_br += _b")
                out.append(i1 + "break")
                return
            for s in prefix:
                self._chain_op(out, i1, s)
            out.append(i1 + "_i = %d" % k)
            out.append(i1 + "break")
            return
        if len(run) > cap:
            for s in run[:cap]:
                self._chain_op(out, i1, s)
            out.append(i1 + "_i = %d" % (run[cap - 1] + 1))
            out.append(i1 + "break")
            return
        for s in run:
            self._chain_op(out, i1, s)
        if term is None:
            out.append(i1 + "_i = %d" % k)
            out.append(i1 + "break")
            return
        if loop_ti is not None:
            # entering mid-loop (or at the back-branch): finish this
            # pass once, then fall into the shared steady loop
            self._raw_break(out, i1, term)
            out.append(i1 + "counts[%d] += 1" % term)
            out.append(i1 + "_n += 1")
            out.append(i1 + "c += 1")
            out.append(i1 + "if not (%s):" % self._cond_expr(term))
            out.append(i1 + " _i = %d" % (term + 1))
            out.append(i1 + " break")
            out.append(i1 + "_br += %d" % self.pen)
            out.append(i1 + "c += %d" % self.pen)
            out.append(i1 + "c, _i, _n, _b = _w%d(ctx, c, _n)" % term)
            out.append(i1 + "_br += _b")
            out.append(i1 + "break")
            return
        ins = self.body[term]
        if ins.op.fmt not in (Fmt.BRANCH, Fmt.XLOOP):
            self._emit_term_jump(out, i1, term)
            return
        self._emit_term_branch(out, i1, term)

    # -- per-slot issue functions -----------------------------------------

    def _emit_compute(self, out, i):
        """kind 0/2: ALU, LLFU, and control ops."""
        ins = self.body[i]
        op = ins.op
        fmt = op.fmt
        ind = "  "
        self._emit_cirs(out, ind, i)
        self._raw_stall(out, ind, i)
        if self.kind[i] == 2:
            occ = self.occupy[i]
            if self.cfg.llfus == 1:
                out.append(ind + "if lf[0] > cycle:")
                self._emit_stall_one(out, ind + " ", "llfu")
                out.append(ind + "lf[0] = cycle + %d" % occ)
            else:
                out.append(ind + "_u = 0")
                out.append(ind + "while _u < %d:" % self.cfg.llfus)
                out.append(ind + " if lf[_u] <= cycle:")
                out.append(ind + "  break")
                out.append(ind + " _u += 1")
                out.append(ind + "else:")
                self._emit_stall_one(out, ind + " ", "llfu")
                out.append(ind + "lf[_u] = cycle + %d" % occ)

        if fmt in (Fmt.BRANCH, Fmt.XLOOP):
            out.append(ind + "counts[%d] += 1" % i)
            out.append(ind + "ctx.attempt_instrs += 1")
            out.append(ind + "st.busy += 1")
            out.append(ind + "if %s:" % self._cond_expr(i))
            out.append(ind + " st.stall_branch += %d" % self.pen)
            out.append(ind + " ctx.pc_index = %d" % self._target(i))
            out.append(ind + " ctx.ready_at = cycle + %d"
                       % (1 + self.pen))
            out.append(ind + "else:")
            out.append(ind + " ctx.pc_index = %d" % (i + 1))
            out.append(ind + " ctx.ready_at = cycle + 1")
            out.append(ind + "return True")
            return
        if fmt == Fmt.JAL or fmt == Fmt.JALR:
            if op.is_xbreak:
                out.append(ind + "ctx.exit_flag = True")
            if fmt == Fmt.JALR:
                out.append(ind + "_j = (R[%d] + %d) & 4294967294"
                           % (ins.rs1, ins.imm))
            if ins.rd:
                out.append(ind + "R[%d] = %d"
                           % (ins.rd, to_u32(ins.pc + 4)))
                out.append(ind + "ready[%d] = cycle + 1" % ins.rd)
            out.append(ind + "counts[%d] += 1" % i)
            out.append(ind + "ctx.attempt_instrs += 1")
            out.append(ind + "st.busy += 1")
            out.append(ind + "st.stall_branch += %d" % self.pen)
            if fmt == Fmt.JALR:
                out.append(ind + "ctx.pc_index = (_j - %d) >> 2"
                           % self.base)
            else:
                out.append(ind + "ctx.pc_index = %d" % self._target(i))
            out.append(ind + "ctx.ready_at = cycle + %d"
                       % (1 + self.pen))
            out.append(ind + "return True")
            return

        # plain compute: semantics + scoreboard + CIR/bound bookkeeping
        self._sem(out, ind, i)
        out.append(ind + "counts[%d] += 1" % i)
        dst = self.dst[i]
        if dst is not None:
            out.append(ind + "ready[%d] = cycle + %d"
                       % (dst, self.latency[i]))
        if self.pub[i]:
            out.append(ind + "ctx.cir_written.add(%d)" % dst)
            if ins.last_cir_write:
                self._emit_publish(out, ind, dst,
                                   "cycle + %d" % self.latency[i])
        if self.bound_dst[i]:
            out.append(ind + "_b = s32(R[%d])" % dst)
            out.append(ind + "if _b > L.bound:")
            out.append(ind + " L.bound = _b")

        plan = self._chain_plan(i + 1) if self.kind[i] == 0 else None
        if plan is None:
            out.append(ind + "ctx.attempt_instrs += 1")
            out.append(ind + "st.busy += 1")
            out.append(ind + "ctx.pc_index = %d" % (i + 1))
            out.append(ind + "ctx.ready_at = cycle + 1")
            out.append(ind + "return True")
            return
        out.append(ind + "c = cycle + 1")
        out.append(ind + "_n = 1")
        out.append(ind + "_br = 0")
        out.append(ind + "_i = %d" % (i + 1))
        if self.needs_lsq:
            # only the unsquashable oldest iteration may batch ahead
            out.append(ind + "if ctx.k == L._commit_next:")
            self._emit_chain(out, ind + " ", plan)
        else:
            self._emit_chain(out, ind, plan)
        out.append(ind + "ctx.attempt_instrs += _n")
        out.append(ind + "st.busy += _n")
        out.append(ind + "st.stall_branch += _br")
        out.append(ind + "ctx.pc_index = _i")
        out.append(ind + "ctx.ready_at = c")
        out.append(ind + "return True")

    def _emit_load_value(self, out, ind, mnemonic):
        """Inline ``Memory.load`` with a cached page lookup."""
        size, signed = _LOAD_SIZE[mnemonic]
        if size == 4:
            out.append(ind + "_o = _a & 4095")
            out.append(ind + "if _o <= 4092:")
            out.append(ind + " _pg = pages.get(_a >> 12)")
            out.append(ind + " if _pg is None:")
            out.append(ind + "  _pg = getpage(_a)")
            out.append(ind + " _v = (_pg[_o] | (_pg[_o + 1] << 8)"
                             " | (_pg[_o + 2] << 16)"
                             " | (_pg[_o + 3] << 24))")
            out.append(ind + "else:")
            out.append(ind + " _v = mload(_a, 4, %r)" % signed)
        elif size == 1:
            out.append(ind + "_pg = pages.get(_a >> 12)")
            out.append(ind + "if _pg is None:")
            out.append(ind + " _pg = getpage(_a)")
            out.append(ind + "_v = _pg[_a & 4095]")
            if signed:
                out.append(ind + "if _v >= 128:")
                out.append(ind + " _v += 4294967040")
        else:
            out.append(ind + "_v = mload(_a, %d, %r)" % (size, signed))

    def _emit_store_value(self, out, ind, mnemonic):
        """Inline ``Memory.store`` of ``_v`` with a cached page."""
        size = _STORE_SIZE[mnemonic]
        if size == 4:
            out.append(ind + "_o = _a & 4095")
            out.append(ind + "if _o <= 4092:")
            out.append(ind + " _pg = pages.get(_a >> 12)")
            out.append(ind + " if _pg is None:")
            out.append(ind + "  _pg = getpage(_a)")
            out.append(ind + " _pg[_o] = _v & 255")
            out.append(ind + " _pg[_o + 1] = (_v >> 8) & 255")
            out.append(ind + " _pg[_o + 2] = (_v >> 16) & 255")
            out.append(ind + " _pg[_o + 3] = (_v >> 24) & 255")
            out.append(ind + "else:")
            out.append(ind + " mstore(_a, 4, _v)")
        elif size == 1:
            out.append(ind + "_pg = pages.get(_a >> 12)")
            out.append(ind + "if _pg is None:")
            out.append(ind + " _pg = getpage(_a)")
            out.append(ind + "_pg[_a & 4095] = _v & 255")
        else:
            out.append(ind + "mstore(_a, %d, _v)" % size)

    def _emit_stall_one(self, out, ind, counter):
        # inline ``_stall_one`` for the arbitration stalls: under
        # engine gating trace/monitor/recording are all inactive, so
        # only the retry wake-up and the stat counter remain
        out.append(ind + "ctx.ready_at = cycle + 1")
        out.append(ind + "st.stall_%s += 1" % counter)
        out.append(ind + "return True")

    def _emit_memport(self, out, ind):
        out.append(ind + "if L._mem_grants >= %d:" % self.cfg.mem_ports)
        self._emit_stall_one(out, ind + " ", "memport")
        out.append(ind + "L._mem_grants += 1")

    def _emit_mem(self, out, i):
        """kind 1: loads, stores, and AMOs with the pattern's LSQ /
        forwarding / broadcast behaviour folded in (mirrors
        ``LPSU._step_mem`` line for line)."""
        ins = self.body[i]
        op = ins.op
        m = op.mnemonic
        ind = "  "
        nl = self.needs_lsq
        self._emit_cirs(out, ind, i)
        self._raw_stall(out, ind, i)
        if nl:
            out.append(ind + "_sp = (not ctx.bypass"
                             " and ctx.k != L._commit_next)")
            out.append(ind + "if not _sp:")
            out.append(ind + " ctx.bypass = True")
        if op.fmt == Fmt.AMO:
            out.append(ind + "_a = R[%d]" % ins.rs1)
            if nl:
                out.append(ind + "if _sp:")
                out.append(ind + " stall_one(ctx, cycle, 'commit')")
                out.append(ind + " return True")
        else:
            out.append(ind + "_a = (R[%d] + %d) & %s"
                       % (ins.rs1, ins.imm, _M))

        result_time = "cycle + 1"
        if op.is_load:
            size, _signed = _LOAD_SIZE[m]
            if nl and self.squash:
                out.append(ind + "if _sp and len(ctx.load_words)"
                                 " >= %d:" % self.cfg.lsq_loads)
                self._emit_stall_one(out, ind + " ", "lsq")
            if nl:
                out.append(ind + "_f = None")
                if self.ilf:
                    out.append(ind + "_fs = -1")
                out.append(ind + "if _sp:")
                out.append(ind + " _f = fwd(ctx, _a, %d)" % size)
                out.append(ind + " if _f == 'overlap':")
                self._emit_stall_one(out, ind + "  ", "lsq")
                if self.ilf:
                    out.append(ind + " if _f is None:")
                    out.append(ind + "  _f, _fs = fwd_across("
                                     "ctx, _a, %d)" % size)
                    out.append(ind + "  if _f == 'overlap':")
                    self._emit_stall_one(out, ind + "   ", "lsq")
                out.append(ind + "if _f is None:")
                i1 = ind + " "
            else:
                i1 = ind
            self._emit_memport(out, i1)
            out.append(i1 + "_x = cacc(_a, False)")
            out.append(i1 + "ev.dc_access += 1")
            out.append(i1 + "if _x > %d:" % self.hit)
            out.append(i1 + " ev.dc_miss += 1")
            self._emit_load_value(out, i1, m)
            if nl:
                if self.squash:
                    out.append(i1 + "if _sp:")
                    out.append(i1 + " ctx.load_words[_a & -4] = -1")
                    out.append(i1 + " ev.lsq_write += 1")
                out.append(ind + "else:")
                out.append(ind + " _x = 1")
                out.append(ind + " _v = _f")
                if self.ilf and self.squash:
                    out.append(ind + " if _fs >= 0:")
                    out.append(ind + "  _w = _a & -4")
                    out.append(ind + "  _p = ctx.load_words.get(_w)")
                    out.append(ind + "  ctx.load_words[_w] = (_fs"
                                     " if _p is None else"
                                     " (_p if _p < _fs else _fs))")
                out.append(ind + "if _sp:")
                out.append(ind + " ev.lsq_search += 1")
            if ins.rd:
                out.append(ind + "R[%d] = _v" % ins.rd)
                out.append(ind + "ready[%d] = cycle + _x" % ins.rd)
                result_time = "cycle + _x"
        elif op.is_store:
            size = _STORE_SIZE[m]
            if nl:
                out.append(ind + "if _sp and len(ctx.store_buf)"
                                 " >= %d:" % self.cfg.lsq_stores)
                self._emit_stall_one(out, ind + " ", "lsq")
            self._emit_memport(out, ind)
            out.append(ind + "_x = cacc(_a, True)")
            out.append(ind + "ev.dc_access += 1")
            out.append(ind + "if _x > %d:" % self.hit)
            out.append(ind + " ev.dc_miss += 1")
            out.append(ind + "_v = R[%d]" % ins.rs2)
            if nl:
                out.append(ind + "if _sp:")
                out.append(ind + " ctx.store_buf.append("
                                 "SE(_a, %d, _v))" % size)
                out.append(ind + " ev.lsq_write += 1")
                if self.ilf:
                    out.append(ind + " inval(ctx, _a, cycle)")
                out.append(ind + "else:")
                i1 = ind + " "
            else:
                i1 = ind
            self._emit_store_value(out, i1, m)
            if self.ilf:
                out.append(i1 + "inval(ctx, _a, cycle)")
            if self.squash:
                out.append(i1 + "bcast(_a, ctx, cycle)")
        else:  # AMO, non-speculative by construction here
            self._emit_memport(out, ind)
            out.append(ind + "_x = cacc(_a, False)")
            out.append(ind + "ev.dc_access += 1")
            out.append(ind + "if _x > %d:" % self.hit)
            out.append(ind + " ev.dc_miss += 1")
            if ins.rd:
                out.append(ind + "R[%d] = mamo(%r, _a, R[%d])"
                           % (ins.rd, m, ins.rs2))
                out.append(ind + "ready[%d] = cycle + %d"
                           % (ins.rd, self.lat.amo))
                result_time = "cycle + %d" % self.lat.amo
            else:
                out.append(ind + "mamo(%r, _a, R[%d])" % (m, ins.rs2))
            if self.ilf:
                out.append(ind + "inval(ctx, _a, cycle)")
            if self.squash:
                out.append(ind + "bcast(_a, ctx, cycle)")
            if self.dyn_bound and ins.rd == self.bound_reg:
                out.append(ind + "_b = s32(R[%d])" % ins.rd)
                out.append(ind + "if _b > L.bound:")
                out.append(ind + " L.bound = _b")

        if self.pub[i]:
            out.append(ind + "ctx.cir_written.add(%d)" % self.dst[i])
            if ins.last_cir_write:
                self._emit_publish(out, ind, self.dst[i], result_time)
        out.append(ind + "counts[%d] += 1" % i)
        out.append(ind + "ctx.attempt_instrs += 1")
        out.append(ind + "ctx.pc_index = %d" % (i + 1))
        out.append(ind + "ctx.ready_at = cycle + 1")
        out.append(ind + "st.busy += 1")
        if self.dyn_bound and op.is_load and ins.rd == self.bound_reg:
            out.append(ind + "_b = s32(R[%d])" % ins.rd)
            out.append(ind + "if _b > L.bound:")
            out.append(ind + " L.bound = _b")
        out.append(ind + "return True")

    # -- assembly ----------------------------------------------------------

    def build(self):
        out = []
        out.append("def make(L):")
        for ln in ("mem = L.mem",
                   "pages = mem._pages",
                   "getpage = mem._page",
                   "mload = mem.load",
                   "mstore = mem.store",
                   "mamo = mem.amo",
                   "cacc = L.cache.access",
                   "st = L.stats",
                   "counts = L._exec_counts",
                   "ev = L.events",
                   "cib = L._cib",
                   "stall_one = L._stall_one",
                   "end_iter = L._end_iteration",
                   "begin_iter = L._begin_iteration",
                   "more_iters = L._more_iterations",
                   "adv_commit = L._advance_commit",
                   "drain = L._drain_one",
                   "fwd = L._forward",
                   "fwd_across = L._forward_across",
                   "inval = L._invalidate_stale_forwards",
                   "bcast = L._broadcast",
                   "lf = L._llfu_free"):
            out.append(" " + ln)
        for term, ti in sorted(self.loop_terms.items()):
            self._emit_loop_fn(out, term, ti)
        for i in range(self.n):
            out.append(" def _s%d(ctx, cycle):" % i)
            out.append("  R = ctx.regs")
            out.append("  ready = ctx.ready")
            if self.kind[i] == 1:
                self._emit_mem(out, i)
            else:
                self._emit_compute(out, i)
        out.append(" SLOTS = [%s]"
                   % ", ".join("_s%d" % i for i in range(self.n)))
        out.append(" def step(ctx, cycle):")
        out.append("  if not ctx.active:")
        out.append("   if not more_iters():")
        out.append("    return False")
        out.append("   begin_iter(ctx, cycle)")
        out.append("  if ctx.ready_at > cycle:")
        out.append("   return False")
        out.append("  if ctx.committing:")
        out.append("   return adv_commit(ctx, cycle)")
        if self.needs_lsq:
            out.append("  if (ctx.store_buf and not ctx.bypass"
                       " and ctx.k == L._commit_next):")
            out.append("   return drain(ctx, cycle, True)")
        out.append("  _pi = ctx.pc_index")
        out.append("  if _pi >= %d:" % self.n)
        out.append("   return end_iter(ctx, cycle)")
        out.append("  return SLOTS[_pi](ctx, cycle)")
        out.append(" return step")

        # deferred import: repro.uarch depends on repro.sim, not the
        # other way around, so _StoreEntry is resolved at build time
        from ..uarch.lpsu import _StoreEntry
        ns = {
            "s32": to_s32,
            "f2b": f32_to_bits,
            "b2f": bits_to_f32,
            "md": _muldiv,
            "fdivb": _fp_div,
            "fsqrtb": _fsqrt,
            "SE": _StoreEntry,
        }
        src = "\n".join(out)
        code = compile(src, "<fused:lpsu>", "exec")
        exec(code, ns)
        return ns["make"]


def _lpsu_content_key(descriptor, lpsu_cfg, gpp_cfg):
    """Everything the generated engine source depends on.  Two loops
    with equal keys produce byte-identical source, and the generated
    code binds all live state inside ``make(L)``, so compiled engines
    are shared across programs/processes-lifetime by content."""
    d = descriptor
    body = tuple((ins.op.mnemonic, ins.rd, ins.rs1, ins.rs2, ins.imm,
                  ins.pc, ins.last_cir_write) for ins in d.body)
    return (body, d.body_start_pc, frozenset(d.cirs), d.bound_reg,
            d.kind.data.ordered_through_registers,
            d.kind.data.needs_memory_disambiguation,
            d.kind.control.value, repr(lpsu_cfg),
            repr(gpp_cfg.latencies), gpp_cfg.cache.hit_latency)


def lpsu_engine(program, descriptor, lpsu_cfg, gpp_cfg):
    """Compiled fused-lane step engine for one xloop, or None.

    Returns a ``make(lpsu) -> step`` factory cached on *program* (the
    body, CIR set, and last-CIR-write bits of a static xloop never
    change between invocations; only MIV increments do, and those live
    in interpreted iteration setup).  None when the body contains an
    instruction the generator cannot inline — the LPSU then runs fully
    interpreted, exactly as before.
    """
    key = ("lpsu", descriptor.xloop_pc, repr(lpsu_cfg),
           repr(gpp_cfg.latencies), gpp_cfg.cache.hit_latency)
    cache = getattr(program, "_fused", None)
    if cache is None:
        cache = program._fused = {}
    if key in cache:
        return cache[key]
    make = None
    if descriptor.body and all(emittable(ins)
                               for ins in descriptor.body):
        ck = _lpsu_content_key(descriptor, lpsu_cfg, gpp_cfg)
        make = _LPSU_MAKE_CACHE.get(ck)
        if make is None:
            make = _LPSU_MAKE_CACHE[ck] = \
                _LPSUGen(descriptor, lpsu_cfg, gpp_cfg).build()
    cache[key] = make
    return make
