"""Disk-cache administration: code-fingerprint key salting, usage
stats served by the per-shard index, size-bounded pruning, the
in-memory hot tier, and the ``repro cache`` CLI."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.eval import diskcache


@pytest.fixture(autouse=True)
def _cache_enabled(monkeypatch):
    """These tests exist to exercise the disk cache: force it on even
    under the hermetic-CI ``REPRO_NO_CACHE=1`` environment, and
    restore the module-level configuration afterwards."""
    saved = (diskcache._dir_override, diskcache._force_disabled,
             os.environ.get(diskcache.ENV_CACHE_DIR))
    monkeypatch.delenv(diskcache.ENV_NO_CACHE, raising=False)
    diskcache._force_disabled = False
    yield
    diskcache._dir_override, diskcache._force_disabled = saved[:2]
    if saved[2] is None:
        os.environ.pop(diskcache.ENV_CACHE_DIR, None)
    else:
        os.environ[diskcache.ENV_CACHE_DIR] = saved[2]
    diskcache.hot_clear()
    diskcache.reset_stats()


def _populate(tmp_path, n=4, size=1000):
    diskcache.configure(cache_dir=str(tmp_path))
    keys = []
    for i in range(n):
        key = diskcache.cache_key("admin", i)
        diskcache.store(key, b"x" * size)
        keys.append(key)
    return keys


class TestCodeFingerprintSalt:
    def test_key_changes_with_code_fingerprint(self, monkeypatch):
        key = diskcache.cache_key("point", 1)
        assert key == diskcache.cache_key("point", 1)  # deterministic
        monkeypatch.setattr(diskcache, "_code_fp", "different-code")
        assert diskcache.cache_key("point", 1) != key

    def test_fingerprint_hashed_once_per_interpreter(self,
                                                     monkeypatch):
        # the package walk + hash is paid at most once per process:
        # repeated runner.run entry points (and every cache_key call)
        # must reuse the memoized digest
        calls = []
        real_walk = os.walk

        def counting_walk(*args, **kw):
            calls.append(args)
            return real_walk(*args, **kw)

        monkeypatch.setattr(diskcache, "_code_fp", None)
        monkeypatch.setattr(diskcache.os, "walk", counting_walk)
        fp = diskcache.code_fingerprint()
        assert diskcache.code_fingerprint() == fp
        diskcache.cache_key("point", 1)
        diskcache.cache_key("point", 2)
        assert len(calls) == 1

    def test_fingerprint_covers_package_sources(self):
        fp = diskcache.code_fingerprint()
        assert fp == diskcache.code_fingerprint()  # memoized
        assert len(fp) == 64
        # the fingerprint hashes this very package: its root holds
        # the repro sources the walk is defined over
        root = os.path.dirname(os.path.abspath(diskcache.__file__))
        assert os.path.exists(os.path.join(root, "diskcache.py"))


class TestDiskStatsAndPrune:
    def test_stats_count_records_and_bytes(self, tmp_path):
        _populate(tmp_path, n=3)
        st = diskcache.disk_stats()
        assert st["dir"] == str(tmp_path)
        assert st["records"] == 3
        assert st["bytes"] > 3 * 1000

    def test_prune_keeps_newest_within_budget(self, tmp_path):
        keys = _populate(tmp_path, n=4)
        # make the first record clearly the oldest; aging the file
        # from outside must also touch its shard directory, which is
        # exactly the signal the per-shard index watches to notice
        # out-of-band modifications and rescan
        old = diskcache._record_path(keys[0])
        past = time.time() - 1000
        os.utime(old, (past, past))
        os.utime(os.path.dirname(old))
        st = diskcache.disk_stats()
        budget = st["bytes"] - 1  # force exactly one eviction
        removed, freed = diskcache.prune(budget)
        assert removed == 1
        assert freed > 0
        assert not os.path.exists(old)
        assert diskcache.load(keys[-1]) is not None

    def test_prune_to_zero_removes_everything(self, tmp_path):
        _populate(tmp_path, n=3)
        removed, _freed = diskcache.prune(0)
        assert removed == 3
        assert diskcache.disk_stats()["records"] == 0


class TestShardIndex:
    """The per-shard persistent index: stats without O(n) scans,
    self-healing on out-of-band changes, legacy caches untouched."""

    def test_stats_are_index_served(self, tmp_path):
        keys = _populate(tmp_path, n=6)
        st = diskcache.disk_stats()
        assert st["records"] == 6
        # every populated shard now has an index file, and the index
        # directory itself is never mistaken for a record shard
        shard = keys[0][:2]
        assert os.path.exists(
            os.path.join(str(tmp_path), diskcache.INDEX_DIRNAME,
                         shard + ".json"))
        # a second stats call over a quiescent cache rescans nothing
        before = diskcache.stats["index_rebuilds"]
        again = diskcache.disk_stats()
        assert again["records"] == 6
        assert diskcache.stats["index_rebuilds"] == before

    def test_external_delete_is_noticed(self, tmp_path):
        keys = _populate(tmp_path, n=4)
        assert diskcache.disk_stats()["records"] == 4
        # removing a record out-of-band bumps its shard dir's mtime,
        # which invalidates that shard's index on the next read
        os.unlink(diskcache._record_path(keys[0]))
        assert diskcache.disk_stats()["records"] == 3

    def test_legacy_cache_without_indexes(self, tmp_path):
        import shutil
        _populate(tmp_path, n=5)
        shutil.rmtree(os.path.join(str(tmp_path),
                                   diskcache.INDEX_DIRNAME))
        # a pre-index cache directory serves stats (lazily rebuilding
        # its indexes) and records without any migration step
        st = diskcache.disk_stats()
        assert st["records"] == 5
        assert os.path.isdir(os.path.join(str(tmp_path),
                                          diskcache.INDEX_DIRNAME))

    def test_garbage_index_is_rebuilt(self, tmp_path):
        keys = _populate(tmp_path, n=3)
        idx = os.path.join(str(tmp_path), diskcache.INDEX_DIRNAME,
                           keys[0][:2] + ".json")
        with open(idx, "w") as f:
            f.write("{not json")
        assert diskcache.disk_stats()["records"] == 3

    def test_fsck_rebuilds_indexes(self, tmp_path):
        import shutil
        _populate(tmp_path, n=4)
        shutil.rmtree(os.path.join(str(tmp_path),
                                   diskcache.INDEX_DIRNAME))
        report = diskcache.fsck()
        assert report["checked"] == 4
        assert report["indexed"] >= 1
        assert diskcache.disk_stats()["records"] == 4


class TestHotTier:
    """The in-memory decoded-record LRU in front of the disk store."""

    def _loadable(self, tmp_path, n=3, size=500):
        keys = _populate(tmp_path, n=n, size=size)
        diskcache.hot_clear()
        diskcache.reset_stats()
        return keys

    def test_load_populates_and_hits(self, tmp_path):
        keys = self._loadable(tmp_path)
        assert diskcache.load(keys[0]) is not None   # disk, fills hot
        hits = diskcache.stats["hot_hits"]
        assert diskcache.load(keys[0]) is not None   # hot
        assert diskcache.stats["hot_hits"] == hits + 1
        assert diskcache.hot_stats()["entries"] == 1

    def test_hot_serves_without_disk(self, tmp_path):
        keys = self._loadable(tmp_path)
        assert diskcache.load(keys[0]) is not None
        # the record is gone from disk; the hot tier still serves it
        # (records are content-addressed and immutable, so this can
        # never serve stale data)
        os.unlink(diskcache._record_path(keys[0]))
        assert diskcache.load(keys[0]) is not None

    def test_lru_eviction_under_budget(self, tmp_path, monkeypatch):
        keys = self._loadable(tmp_path, n=6, size=400)
        # ~1 KiB budget: two ~430-byte decoded records fit, six do not
        monkeypatch.setenv(diskcache.ENV_HOT_MB, "0.001")
        for key in keys:
            assert diskcache.load(key) is not None
        hot = diskcache.hot_stats()
        assert hot["evictions"] > 0
        assert hot["bytes"] <= hot["limit_bytes"]
        assert 0 < hot["entries"] < len(keys)

    def test_zero_budget_disables(self, tmp_path, monkeypatch):
        keys = self._loadable(tmp_path)
        monkeypatch.setenv(diskcache.ENV_HOT_MB, "0")
        assert diskcache.load(keys[0]) is not None
        assert diskcache.load(keys[0]) is not None
        hot = diskcache.hot_stats()
        assert hot["entries"] == 0 and hot["hits"] == 0

    def test_clear_drops_hot_entries(self, tmp_path):
        keys = self._loadable(tmp_path)
        assert diskcache.load(keys[0]) is not None
        assert diskcache.hot_stats()["entries"] == 1
        diskcache.clear()
        assert diskcache.hot_stats()["entries"] == 0
        assert diskcache.load(keys[0]) is None


class TestDefaultFast:
    def test_env_var_disables(self, monkeypatch):
        from repro.eval import runner
        monkeypatch.setattr(runner, "_DEFAULT_FAST", None)
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        assert runner.default_fast() is False
        monkeypatch.setattr(runner, "_DEFAULT_FAST", None)
        monkeypatch.delenv("REPRO_NO_FAST")
        assert runner.default_fast() is True

    def test_set_default_fast_mirrors_env(self, monkeypatch):
        from repro.eval import runner
        saved = runner._DEFAULT_FAST
        monkeypatch.setenv("REPRO_NO_FAST", "keep")  # restored on exit
        try:
            runner.set_default_fast(False)
            assert os.environ.get("REPRO_NO_FAST") == "1"
            assert runner.default_fast() is False
            runner.set_default_fast(True)
            assert "REPRO_NO_FAST" not in os.environ
            assert runner.default_fast() is True
        finally:
            runner._DEFAULT_FAST = saved


class TestCacheCLI:
    def test_stats(self, tmp_path, capsys):
        _populate(tmp_path, n=2)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "2" in out

    def test_clear(self, tmp_path, capsys):
        _populate(tmp_path, n=2)
        assert main(["cache", "clear"]) == 0
        assert diskcache.disk_stats()["records"] == 0

    def test_prune_with_size_suffix(self, tmp_path, capsys):
        _populate(tmp_path, n=4, size=1024)
        assert main(["cache", "prune", "--max-size", "2K"]) == 0
        assert diskcache.disk_stats()["bytes"] <= 2048

    def test_cache_dir_flag(self, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        other.mkdir()
        assert main(["cache", "stats",
                     "--cache-dir", str(other)]) == 0
        assert str(other) in capsys.readouterr().out

    def test_stats_json(self, tmp_path, capsys):
        keys = _populate(tmp_path, n=3)
        assert main(["cache", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 3
        assert {"entries", "bytes", "hits",
                "evictions"} <= set(payload["hot"])
        dist = payload["shard_distribution"]
        assert sum(e["records"] for e in dist.values()) == 3
        assert keys[0][:2] in dist
