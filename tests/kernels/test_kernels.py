"""Tri-modal verification of every application kernel: the GP binary,
the XLOOPS binary under traditional execution, specialized execution,
and adaptive execution must all produce golden-checked results."""

import pytest

from repro.kernels import ALL_KERNELS, KERNELS, TABLE2_KERNELS, get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

IO_CFG = SystemConfig("io", IO)
IOX = SystemConfig("io+x", IO, lpsu=LPSUConfig())


def run_kernel_once(spec, compile_kw, mode, cfg, scale="tiny"):
    cp = compile_source(spec.source, **compile_kw)
    wl = spec.workload(scale)
    mem = Memory()
    args = wl.apply(mem)
    result = simulate(cp.program, cfg, entry=spec.entry, args=args,
                      mem=mem, mode=mode)
    wl.check(mem)
    return result, cp


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_gp_binary_correct(name):
    run_kernel_once(get_kernel(name), {"xloops": False}, "traditional",
                    IO_CFG)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_traditional_execution_correct(name):
    run_kernel_once(get_kernel(name), {}, "traditional", IO_CFG)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_specialized_execution_correct(name):
    spec = get_kernel(name)
    result, _ = run_kernel_once(spec, {}, "specialized", IOX)
    assert result.specialized_invocations >= 1, \
        "%s never reached the LPSU" % name


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_adaptive_execution_correct(name):
    run_kernel_once(get_kernel(name), {}, "adaptive", IOX)


@pytest.mark.parametrize("name", [n for n in sorted(KERNELS)
                                  if KERNELS[n].serial_source])
def test_serial_variant_correct(name):
    spec = get_kernel(name)
    cp = compile_source(spec.serial_source, xloops=False)
    wl = spec.workload("tiny")
    mem = Memory()
    args = wl.apply(mem)
    simulate(cp.program, IO_CFG, entry=spec.entry, args=args, mem=mem,
             mode="traditional")
    wl.check(mem)


class TestPatternLabels:
    """Each kernel's name suffix must match what the compiler infers
    for its dominant loop (Table II's Type column)."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_dominant_pattern_matches_name(self, name):
        spec = get_kernel(name)
        cp = compile_source(spec.source)
        kinds = [l.mnemonic for l in cp.loops]
        dominant = spec.dominant
        if dominant == "db":   # pragma: no cover - no such spec
            pytest.skip("db is a control suffix")
        assert any(k.split(".")[1] == dominant for k in kinds), \
            (name, kinds)

    def test_dynamic_bound_kernels(self):
        for name in ("bfs-uc-db", "qsort-uc-db"):
            cp = compile_source(get_kernel(name).source)
            assert any(l.dynamic_bound for l in cp.loops), name

    def test_fig2_war_mapping(self):
        cp = compile_source(get_kernel("war-om").source)
        assert cp.loop_kinds() == ("xloop.om", "xloop.uc")

    def test_fig3_mm_mapping(self):
        cp = compile_source(get_kernel("mm-orm").source)
        assert cp.loop_kinds() == ("xloop.orm",)
        assert cp.loops[0].cirs == ("k",)


class TestWorkloads:
    def test_registry_covers_table2(self):
        assert len(TABLE2_KERNELS) == 25

    def test_all_names_unique(self):
        names = [k.name for k in ALL_KERNELS]
        assert len(names) == len(set(names))

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("nonesuch")

    def test_workloads_deterministic(self):
        spec = get_kernel("sgemm-uc")
        w1 = spec.workload("tiny", seed=3)
        w2 = spec.workload("tiny", seed=3)
        m1, m2 = Memory(), Memory()
        a1, a2 = w1.apply(m1), w2.apply(m2)
        assert a1 == a2
        assert m1.read_words(a1[0], 16) == m2.read_words(a2[0], 16)

    def test_scales_differ(self):
        spec = get_kernel("rgb2cmyk-uc")
        tiny = spec.workload("tiny")
        small = spec.workload("small")
        assert tiny.args[-1] < small.args[-1]


class TestShapes:
    """Coarse performance-shape checks from the paper's Section IV."""

    def _speedup(self, name, scale="tiny"):
        spec = get_kernel(name)
        base, _ = run_kernel_once(spec, {"xloops": False}, "traditional",
                                  IO_CFG, scale)
        svc, _ = run_kernel_once(spec, {}, "specialized", IOX, scale)
        return base.cycles / svc.cycles

    def test_uc_kernels_speed_up_on_io(self):
        # "specialized execution always benefits the in-order
        # processor"; war-uc amortizes its scan phases poorly at the
        # tiny scale (one scan per middle-loop instance), hence the
        # lower floor there
        assert self._speedup("rgb2cmyk-uc") > 2.0
        assert self._speedup("ssearch-uc") > 1.5
        assert self._speedup("war-uc") > 1.1
        assert self._speedup("war-uc", scale="small") > 1.4

    def test_ksack_small_weights_squash_more(self):
        sm, _ = run_kernel_once(get_kernel("ksack-sm-om"), {},
                                "specialized", IOX)
        lg, _ = run_kernel_once(get_kernel("ksack-lg-om"), {},
                                "specialized", IOX)
        assert sm.lpsu_stats.squashes > lg.lpsu_stats.squashes

    def test_hand_optimized_or_kernels_faster(self):
        for base, opt in (("dither-or", "dither-or-opt"),
                          ("sha-or", "sha-or-opt")):
            b, _ = run_kernel_once(get_kernel(base), {}, "specialized",
                                   IOX)
            o, _ = run_kernel_once(get_kernel(opt), {}, "specialized",
                                   IOX)
            assert o.cycles < b.cycles, (base, opt)

    def test_xloops_binary_close_to_gp_binary_traditionally(self):
        # Table II T columns: overhead minimal for most kernels
        for name in ("sgemm-uc", "adpcm-or", "dynprog-om"):
            spec = get_kernel(name)
            gp, _ = run_kernel_once(spec, {"xloops": False},
                                    "traditional", IO_CFG)
            tr, _ = run_kernel_once(spec, {}, "traditional", IO_CFG)
            ratio = tr.cycles / gp.cycles
            assert 0.9 < ratio < 1.1, (name, ratio)
