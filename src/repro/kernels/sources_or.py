"""Ordered-through-registers (xloop.or) application kernels:
adpcm-or, covar-or, dither-or, kmeans-or, sha-or (symm-or lives with
the symm sources)."""

from __future__ import annotations

from .base import KernelSpec, Workload, region, rng_for, scale_select

# ---------------------------------------------------------------------------
# adpcm-or: IMA ADPCM encoder (MiBench) - predictor state is carried in
# registers across samples (valpred, index)
# ---------------------------------------------------------------------------

STEPSIZE = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
            34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
            130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371,
            408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060,
            1166, 1282, 1411, 1552]
INDEXTBL = [-1, -1, -1, -1, 2, 4, 6, 8]

ADPCM_SRC = """
void adpcm(int* pcm, int* steps, int* itab, char* out, int n) {
    int valpred = 0;
    int index = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        int val = pcm[i];
        int step = steps[index];
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = -diff; }
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff = diff - step; vpdiff = vpdiff + step; }
        step = step >> 1;
        if (diff >= step) { delta = delta | 2; diff = diff - step; vpdiff = vpdiff + step; }
        step = step >> 1;
        if (diff >= step) { delta = delta | 1; vpdiff = vpdiff + step; }
        if (sign) { valpred = valpred - vpdiff; }
        else { valpred = valpred + vpdiff; }
        if (valpred > 32767) { valpred = 32767; }
        if (valpred < -32768) { valpred = -32768; }
        index = index + itab[delta];
        if (index < 0) { index = 0; }
        if (index > 56) { index = 56; }
        out[i] = (char)(delta | sign);
    }
}
"""


def _adpcm_golden(pcm):
    valpred, index = 0, 0
    out = []
    for val in pcm:
        step = STEPSIZE[index]
        diff = val - valpred
        sign = 8 if diff < 0 else 0
        if diff < 0:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        index = max(0, min(56, index + INDEXTBL[delta]))
        out.append((delta | sign) & 0xFF)
    return out


def _adpcm_make(scale, seed):
    n = scale_select(scale, 48, 256, 1024)
    rng = rng_for(seed, "adpcm")
    pcm = [int(12000 * _wave(i, rng)) for i in range(n)]
    pa, sa, ia, oa = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_words(pa, [v & 0xFFFFFFFF for v in pcm])
        mem.write_words(sa, STEPSIZE)
        mem.write_words(ia, [v & 0xFFFFFFFF for v in INDEXTBL])

    def verify(mem):
        assert mem.read_bytes(oa, n) == _adpcm_golden(pcm)

    return Workload(args=[pa, sa, ia, oa, n], init=init, verify=verify)


def _wave(i, rng):
    import math
    return (math.sin(i / 5.0) * 0.7
            + math.sin(i / 1.7) * 0.2
            + (rng.random() - 0.5) * 0.1)


ADPCM = KernelSpec(
    name="adpcm-or", suite="M", loop_types=("or",),
    source=ADPCM_SRC, entry="adpcm", make=_adpcm_make,
    description="IMA ADPCM encode; predictor state carried in CIRs")

# ---------------------------------------------------------------------------
# covar-or: covariance matrix (PolyBench) - ordered accumulation
# ---------------------------------------------------------------------------

COVAR_SRC = """
void covar(int* data, int* mean, int* cov, int m, int n) {
    for (int j = 0; j < m; j++) {
        int s = 0;
        #pragma xloops ordered
        for (int i = 0; i < n; i++) { s = s + data[i*m+j]; }
        mean[j] = s / n;
    }
    for (int j1 = 0; j1 < m; j1++) {
        for (int j2 = j1; j2 < m; j2++) {
            int acc = 0;
            #pragma xloops ordered
            for (int i = 0; i < n; i++) {
                acc = acc + (data[i*m+j1] - mean[j1])
                          * (data[i*m+j2] - mean[j2]);
            }
            cov[j1*m+j2] = acc;
            cov[j2*m+j1] = acc;
        }
    }
}
"""


def _covar_make(scale, seed):
    m = scale_select(scale, 4, 6)
    n = scale_select(scale, 12, 32)
    rng = rng_for(seed, "covar")
    data = [rng.randrange(-9, 10) for _ in range(n * m)]
    da, ma, ca = region(0), region(1), region(2)

    def init(mem):
        mem.write_words(da, [v & 0xFFFFFFFF for v in data])

    def verify(mem):
        mean = [_cdiv(sum(data[i * m + j] for i in range(n)), n)
                for j in range(m)]
        got_mean = mem.read_words_signed(ma, m)
        assert got_mean == mean
        got = mem.read_words_signed(ca, m * m)
        for j1 in range(m):
            for j2 in range(j1, m):
                acc = sum((data[i * m + j1] - mean[j1])
                          * (data[i * m + j2] - mean[j2])
                          for i in range(n))
                assert got[j1 * m + j2] == acc
                assert got[j2 * m + j1] == acc

    return Workload(args=[da, ma, ca, m, n], init=init, verify=verify)


def _cdiv(a, b):
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


COVAR = KernelSpec(
    name="covar-or", suite="Po", loop_types=("or",),
    source=COVAR_SRC, entry="covar", make=_covar_make,
    description="covariance matrix with ordered accumulations")

# ---------------------------------------------------------------------------
# dither-or / dither-or-opt / dither-uc: Floyd-Steinberg dithering
# The error carried to the right neighbour lives in a register (CIR);
# errors for the next row go to a separate buffer (no memory ordering).
# ---------------------------------------------------------------------------

# Down-going error partials are carried in registers (p0/p1 CIRs) so
# each nxt[] element is written exactly once -- no memory ordering, the
# dependence is purely through registers (-> xloop.or, as in the paper).
# Baseline: the critical err CIR update is the *last* thing computed.
DITHER_OR_SRC = """
void dither(char* gray, char* out, int* cur, int* nxt, int w, int h) {
    for (int y = 0; y < h; y++) {
        int row = y * w;
        int err = 0;
        int p0 = 0;
        int p1 = 0;
        #pragma xloops ordered
        for (int x = 0; x < w; x++) {
            int old = gray[row + x] + cur[x] + err;
            int pix = 0;
            if (old > 127) { pix = 255; }
            out[row + x] = (char)pix;
            int diff = old - pix;
            if (x > 0) { nxt[x-1] = p0 + (diff * 3) / 16; }
            p0 = p1 + (diff * 5) / 16;
            p1 = (diff * 1) / 16;
            err = (diff * 7) / 16;
        }
        nxt[w-1] = p0;
        for (int x = 0; x < w; x++) { cur[x] = nxt[x]; nxt[x] = 0; }
    }
}
"""

# hand-scheduled (Section IV-G): the critical err CIR update is hoisted
# right after diff so the inter-iteration critical path shrinks
DITHER_OR_OPT_SRC = """
void dither(char* gray, char* out, int* cur, int* nxt, int w, int h) {
    for (int y = 0; y < h; y++) {
        int row = y * w;
        int err = 0;
        int p0 = 0;
        int p1 = 0;
        #pragma xloops ordered
        for (int x = 0; x < w; x++) {
            int old = gray[row + x] + cur[x] + err;
            int pix = 0;
            if (old > 127) { pix = 255; }
            int diff = old - pix;
            err = (diff * 7) / 16;
            out[row + x] = (char)pix;
            if (x > 0) { nxt[x-1] = p0 + (diff * 3) / 16; }
            p0 = p1 + (diff * 5) / 16;
            p1 = (diff * 1) / 16;
        }
        nxt[w-1] = p0;
        for (int x = 0; x < w; x++) { cur[x] = nxt[x]; nxt[x] = 0; }
    }
}
"""

# loop-transformed variant (Section IV-G): rows processed serially but
# the error to the right is *stored through memory per pixel ahead of
# time* is not possible; instead the transformed kernel privatizes by
# dithering independent row *blocks* (quality trade-off the paper's
# transformed kernels also accept)
DITHER_UC_SRC = """
void dither(char* gray, char* out, int* errs, int w, int h) {
    #pragma xloops unordered
    for (int y = 0; y < h; y++) {
        int row = y * w;
        int err = 0;
        for (int x = 0; x < w; x++) {
            int old = gray[row + x] + err;
            int pix = 0;
            if (old > 127) { pix = 255; }
            out[row + x] = (char)pix;
            err = ((old - pix) * 7) / 16;
        }
    }
}
"""


def _dither_golden(gray, w, h):
    out = [0] * (w * h)
    cur = [0] * w
    for y in range(h):
        nxt = [0] * w
        err = p0 = p1 = 0
        for x in range(w):
            old = gray[y * w + x] + cur[x] + err
            pix = 255 if old > 127 else 0
            out[y * w + x] = pix
            diff = old - pix
            if x > 0:
                nxt[x - 1] = p0 + _cdiv(diff * 3, 16)
            p0 = p1 + _cdiv(diff * 5, 16)
            p1 = _cdiv(diff * 1, 16)
            err = _cdiv(diff * 7, 16)
        nxt[w - 1] = p0
        cur = nxt
    return out


def _dither_rowwise_golden(gray, w, h):
    out = [0] * (w * h)
    for y in range(h):
        err = 0
        for x in range(w):
            old = gray[y * w + x] + err
            pix = 255 if old > 127 else 0
            out[y * w + x] = pix
            err = _cdiv((old - pix) * 7, 16)
    return out


def _dither_make_or(scale, seed):
    w = scale_select(scale, 12, 24, 48)
    h = scale_select(scale, 4, 10, 24)
    rng = rng_for(seed, "dither")
    gray = [rng.randrange(256) for _ in range(w * h)]
    ga, oa, ca, na = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_bytes(ga, gray)
        mem.write_words(ca, [0] * w)
        mem.write_words(na, [0] * w)

    def verify(mem):
        assert mem.read_bytes(oa, w * h) == _dither_golden(gray, w, h)

    return Workload(args=[ga, oa, ca, na, w, h], init=init, verify=verify)


def _dither_make_uc(scale, seed):
    w = scale_select(scale, 12, 24, 48)
    h = scale_select(scale, 4, 10, 24)
    rng = rng_for(seed, "dither")
    gray = [rng.randrange(256) for _ in range(w * h)]
    ga, oa, ea = region(0), region(1), region(2)

    def init(mem):
        mem.write_bytes(ga, gray)

    def verify(mem):
        assert mem.read_bytes(oa, w * h) == _dither_rowwise_golden(
            gray, w, h)

    return Workload(args=[ga, oa, ea, w, h], init=init, verify=verify)


DITHER_OR = KernelSpec(
    name="dither-or", suite="C", loop_types=("or",),
    source=DITHER_OR_SRC, entry="dither", make=_dither_make_or,
    description="Floyd-Steinberg dithering, error carried in a CIR")

DITHER_OR_OPT = KernelSpec(
    name="dither-or-opt", suite="C", loop_types=("or",),
    source=DITHER_OR_OPT_SRC, entry="dither", make=_dither_make_or,
    description="dither-or with the CIR update scheduled early")

DITHER_UC = KernelSpec(
    name="dither-uc", suite="C", loop_types=("uc",),
    source=DITHER_UC_SRC, entry="dither", make=_dither_make_uc,
    description="dither transformed to independent rows")

# ---------------------------------------------------------------------------
# kmeans-or / kmeans-uc: k-means assignment step (custom kernel)
# ---------------------------------------------------------------------------

KMEANS_OR_SRC = """
void kmeans(int* px, int* py, int* cx, int* cy, int* assign,
            int* csum, int n, int k) {
    int sse = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        int x = px[i];
        int y = py[i];
        int best = 2000000000;
        int bc = 0;
        for (int c = 0; c < k; c++) {
            int dx = x - cx[c];
            int dy = y - cy[c];
            int d = dx*dx + dy*dy;
            if (d < best) { best = d; bc = c; }
        }
        assign[i] = bc;
        sse = sse + best;
        int old0 = amo_add(&csum[3*bc], x);
        int old1 = amo_add(&csum[3*bc+1], y);
        int old2 = amo_add(&csum[3*bc+2], 1);
    }
    csum[3*k] = sse;
}
"""

KMEANS_UC_SRC = """
void kmeans(int* px, int* py, int* cx, int* cy, int* assign,
            int* csum, int n, int k) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int x = px[i];
        int y = py[i];
        int best = 2000000000;
        int bc = 0;
        for (int c = 0; c < k; c++) {
            int dx = x - cx[c];
            int dy = y - cy[c];
            int d = dx*dx + dy*dy;
            if (d < best) { best = d; bc = c; }
        }
        assign[i] = bc;
        int old0 = amo_add(&csum[3*bc], x);
        int old1 = amo_add(&csum[3*bc+1], y);
        int old2 = amo_add(&csum[3*bc+2], 1);
        int old3 = amo_add(&csum[3*k], best);
    }
}
"""


def _kmeans_make(scale, seed):
    n = scale_select(scale, 24, 96, 384)
    k = 4
    rng = rng_for(seed, "kmeans")
    px = [rng.randrange(-100, 101) for _ in range(n)]
    py = [rng.randrange(-100, 101) for _ in range(n)]
    cx = [-50, 50, -50, 50]
    cy = [-50, -50, 50, 50]
    pxa, pya, cxa, cya, aa, sa = (region(i) for i in range(6))

    def init(mem):
        mem.write_words(pxa, [v & 0xFFFFFFFF for v in px])
        mem.write_words(pya, [v & 0xFFFFFFFF for v in py])
        mem.write_words(cxa, [v & 0xFFFFFFFF for v in cx])
        mem.write_words(cya, [v & 0xFFFFFFFF for v in cy])

    def verify(mem):
        assign = mem.read_words(aa, n)
        sums = mem.read_words_signed(sa, 3 * k + 1)
        exp_sum = [0] * (3 * k)
        sse = 0
        for i in range(n):
            dists = [(px[i] - cx[c]) ** 2 + (py[i] - cy[c]) ** 2
                     for c in range(k)]
            best = min(dists)
            bc = dists.index(best)
            assert assign[i] == bc, i
            exp_sum[3 * bc] += px[i]
            exp_sum[3 * bc + 1] += py[i]
            exp_sum[3 * bc + 2] += 1
            sse += best
        assert sums[:3 * k] == exp_sum
        assert sums[3 * k] == sse

    return Workload(args=[pxa, pya, cxa, cya, aa, sa, n, k],
                    init=init, verify=verify)


KMEANS_OR = KernelSpec(
    name="kmeans-or", suite="C", loop_types=("or", "uc"),
    source=KMEANS_OR_SRC, entry="kmeans", make=_kmeans_make,
    description="k-means assignment; distortion accumulated in a CIR")

KMEANS_UC = KernelSpec(
    name="kmeans-uc", suite="C", loop_types=("uc",),
    source=KMEANS_UC_SRC, entry="kmeans", make=_kmeans_make,
    description="k-means assignment transformed to AMO reductions")

# ---------------------------------------------------------------------------
# sha-or / sha-or-opt: SHA-1-style round loop (MiBench)
# five state registers rotate through the rounds -> CIR chain
# ---------------------------------------------------------------------------

SHA_SRC = """
void sha(int* w, int* digest, int rounds) {
    int a = 1732584193;
    int b = -271733879;
    int c = -1732584194;
    int d = 271733878;
    int e = -1009589776;
    #pragma xloops ordered
    for (int t = 0; t < rounds; t++) {
        int f = (b & c) | (~b & d);
        int rot5 = (a << 5) | ((a >> 27) & 31);
        int tmp = rot5 + f + e + w[t] + 1518500249;
        e = d;
        d = c;
        c = (b << 30) | ((b >> 2) & 1073741823);
        b = a;
        a = tmp;
    }
    digest[0] = a;
    digest[1] = b;
    digest[2] = c;
    digest[3] = d;
    digest[4] = e;
}
"""

# hand-scheduled: same dataflow, but the new 'a' (the critical CIR) is
# produced before the cheap state rotations
SHA_OPT_SRC = """
void sha(int* w, int* digest, int rounds) {
    int a = 1732584193;
    int b = -271733879;
    int c = -1732584194;
    int d = 271733878;
    int e = -1009589776;
    #pragma xloops ordered
    for (int t = 0; t < rounds; t++) {
        int rot5 = (a << 5) | ((a >> 27) & 31);
        int f = (b & c) | (~b & d);
        int tmp = rot5 + f + e + w[t] + 1518500249;
        int olda = a;
        a = tmp;
        e = d;
        d = c;
        c = (b << 30) | ((b >> 2) & 1073741823);
        b = olda;
    }
    digest[0] = a;
    digest[1] = b;
    digest[2] = c;
    digest[3] = d;
    digest[4] = e;
}
"""


def _sha_golden(w, rounds):
    M = 0xFFFFFFFF
    a, b, c, d, e = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                     0xC3D2E1F0)
    for t in range(rounds):
        f = (b & c) | (~b & d & M)
        rot5 = ((a << 5) & M) | ((a >> 27) & 31)
        tmp = (rot5 + f + e + w[t] + 0x5A827999) & M
        e = d
        d = c
        c = ((b << 30) & M) | ((b >> 2) & 0x3FFFFFFF)
        b = a
        a = tmp
    return [a, b, c, d, e]


def _sha_make(scale, seed):
    rounds = scale_select(scale, 40, 160, 640)
    rng = rng_for(seed, "sha")
    w = [rng.randrange(1 << 32) for _ in range(rounds)]
    wa, da = region(0), region(1)

    def init(mem):
        mem.write_words(wa, w)

    def verify(mem):
        assert mem.read_words(da, 5) == _sha_golden(w, rounds)

    return Workload(args=[wa, da, rounds], init=init, verify=verify)


SHA = KernelSpec(
    name="sha-or", suite="M", loop_types=("or", "uc"),
    source=SHA_SRC, entry="sha", make=_sha_make,
    description="SHA-1-style rounds with a rotating CIR chain")

SHA_OPT = KernelSpec(
    name="sha-or-opt", suite="M", loop_types=("or",),
    source=SHA_OPT_SRC, entry="sha", make=_sha_make,
    description="sha-or with the critical CIR scheduled first")

OR_KERNELS = (ADPCM, COVAR, DITHER_OR, KMEANS_OR, SHA)
OR_OPT_KERNELS = (DITHER_OR_OPT, SHA_OPT)
UC_TRANSFORMED = (DITHER_UC, KMEANS_UC)
