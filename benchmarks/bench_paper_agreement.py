"""Quantitative paper-vs-measured agreement for Table II's io:S column.

This is the headline reproduction metric: every kernel's measured
specialized-execution speedup on io+x against the value published in
the paper, summarized as directional agreement (same side of 1x,
with a 5% neutral band) and Spearman rank correlation.
"""

from conftest import run_once

from repro.eval import (compare_table2, measured_io_s,
                        render_comparison)


def test_paper_agreement(benchmark):
    measured = run_once(benchmark, measured_io_s, scale="small")
    comparison = compare_table2(measured)
    print()
    print(render_comparison(comparison))
    assert comparison.direction_agreement >= 0.85
    assert comparison.spearman_rho >= 0.5
