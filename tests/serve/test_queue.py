"""The distributed work queue's bookkeeping invariants, in isolation:
leases with deadlines, heartbeat extension, expiry requeue, idempotent
first-writer-wins completion, the bounded requeue budget, and the
crash-safe journal replay.  No sockets here -- the queue is pure state
the server drives from its event loop; the end-to-end behaviour is
tests/serve/test_distributed.py."""

import json

import pytest

from repro.serve.queue import (DEFAULT_LEASE_TTL, QueueJournal,
                               WorkQueue, label_of, qkey_of)

WIRE_A = {"kernel": "sgemm-uc", "config": "io", "mode": "traditional",
          "binary": "xloops", "xi": True, "scale": "tiny", "seed": 0,
          "schedule_cirs": False}
WIRE_B = dict(WIRE_A, config="io+x", mode="specialized")
WIRE_C = dict(WIRE_A, kernel="dither-or", config="io+x",
              mode="specialized")


class FakeClock:
    """Deterministic stand-in for time.monotonic."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, secs):
        self.now += secs


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(clock):
    return WorkQueue(lease_ttl=10.0, requeue_budget=2, clock=clock)


def _worker(queue):
    return queue.register_worker(name="w", pid=123, jobs=1)


class TestIdentity:
    def test_qkey_is_order_independent(self):
        shuffled = dict(reversed(list(WIRE_A.items())))
        assert qkey_of(WIRE_A) == qkey_of(shuffled)

    def test_distinct_points_get_distinct_qkeys(self):
        assert qkey_of(WIRE_A) != qkey_of(WIRE_B)

    def test_label_mirrors_sweep_point(self):
        assert label_of(WIRE_A) == "sgemm-uc/io/traditional/xloops/tiny"


class TestEnqueueLease:
    def test_enqueue_dedups_pending(self, queue):
        _, created1 = queue.enqueue(WIRE_A)
        _, created2 = queue.enqueue(WIRE_A)
        assert created1 and not created2
        assert queue.counters["enqueued"] == 1
        assert queue.queued == 1

    def test_lease_batches_up_to_max(self, queue):
        for wire in (WIRE_A, WIRE_B, WIRE_C):
            queue.enqueue(wire)
        wid = _worker(queue)
        lease = queue.lease(wid, max_points=2)
        assert len(lease.qkeys) == 2
        assert queue.queued == 1
        # leased entries carry their requeue attempt for chaos keying
        for qkey in lease.qkeys:
            assert queue.entries[qkey].attempts == 0
            assert queue.entries[qkey].lease_id == lease.lease_id

    def test_lease_for_unknown_worker_is_refused(self, queue):
        queue.enqueue(WIRE_A)
        assert queue.lease(999) is None

    def test_empty_queue_leases_nothing(self, queue):
        assert queue.lease(_worker(queue)) is None


class TestCompletion:
    def test_first_writer_wins_and_duplicates_count(self, queue):
        queue.enqueue(WIRE_A)
        wid = _worker(queue)
        lease = queue.lease(wid)
        (qkey,) = lease.qkeys
        entry, credited = queue.complete(qkey)
        assert credited and entry is not None
        # the lease dissolved with its last point
        assert not queue.leases and not queue.workers[wid].leases
        # a late duplicate is discarded, counted, never re-credited
        entry2, credited2 = queue.complete(qkey)
        assert not credited2 and entry2 is None
        assert queue.counters["completed"] == 1
        assert queue.counters["duplicates"] == 1

    def test_worker_failure_quarantines_without_requeue(self, queue):
        queue.enqueue(WIRE_A)
        lease = queue.lease(_worker(queue))
        (qkey,) = lease.qkeys
        entry, failure = queue.fail(qkey, "crash", "boom", attempts=3)
        assert failure.kind == "crash" and failure.attempts == 3
        assert qkey in queue.failed
        assert queue.queued == 0            # no requeue for failures
        assert queue.counters["worker_failures"] == 1


class TestLeaseExpiry:
    def test_heartbeat_extends_the_deadline(self, queue, clock):
        queue.enqueue(WIRE_A)
        wid = _worker(queue)
        lease = queue.lease(wid)
        clock.advance(8.0)
        assert queue.heartbeat(wid, lease.lease_id)
        clock.advance(8.0)                  # 16s total, but extended
        assert queue.reclaim_expired() == []
        assert queue.entries[next(iter(lease.qkeys))].lease_id \
            == lease.lease_id

    def test_missed_heartbeat_requeues(self, queue, clock):
        queue.enqueue(WIRE_A)
        wid = _worker(queue)
        lease = queue.lease(wid)
        clock.advance(10.5)
        assert queue.reclaim_expired() == []   # budget not exhausted
        assert queue.counters["expired_leases"] == 1
        assert queue.counters["requeued"] == 1
        assert queue.queued == 1
        (qkey,) = lease.qkeys
        assert queue.entries[qkey].attempts == 1
        # the zombie's heartbeat is refused, but its eventual
        # completion would still be honoured (or deduped)
        assert not queue.heartbeat(wid, lease.lease_id)

    def test_requeue_budget_turns_killers_into_failures(self, queue,
                                                        clock):
        queue.enqueue(WIRE_A)
        wid = _worker(queue)
        for _ in range(queue.requeue_budget):      # burn the budget
            queue.lease(wid)
            clock.advance(10.5)
            assert queue.reclaim_expired() == []
        queue.lease(wid)
        clock.advance(10.5)
        exhausted = queue.reclaim_expired()
        assert len(exhausted) == 1
        failure = exhausted[0].failure
        assert failure.kind == "requeue-exhausted"
        assert failure.attempts == queue.requeue_budget + 1
        assert queue.counters["exhausted"] == 1
        assert queue.queued == 0
        assert qkey_of(WIRE_A) in queue.failed

    def test_dropped_worker_requeues_immediately(self, queue):
        queue.enqueue(WIRE_A)
        queue.enqueue(WIRE_B)
        wid = _worker(queue)
        queue.lease(wid, max_points=2)
        assert queue.release_worker(wid) == []
        assert queue.counters["worker_losses"] == 1
        assert queue.counters["requeued"] == 2
        assert queue.queued == 2 and not queue.leases
        assert wid not in queue.workers

    def test_completion_races_expiry(self, queue, clock):
        """A slow worker's result lands after its lease expired and
        the point was requeued: the completion is still honoured
        (results are deterministic -- any writer's answer is THE
        answer) and the requeued copy becomes the duplicate."""
        queue.enqueue(WIRE_A)
        wid = _worker(queue)
        lease = queue.lease(wid)
        (qkey,) = lease.qkeys
        clock.advance(10.5)
        queue.reclaim_expired()             # requeued, pending again
        entry, credited = queue.complete(qkey)   # slow writer arrives
        assert credited
        # the requeued pending copy is skipped at the next lease
        assert queue.lease(wid) is None
        assert queue.counters["completed"] == 1


class TestIdle:
    def test_idle_accounts_for_workers_and_leases(self, queue, clock):
        assert queue.idle
        wid = _worker(queue)
        assert not queue.idle               # a connected worker
        queue.enqueue(WIRE_A)
        queue.lease(wid)
        assert not queue.idle               # an unexpired lease
        queue.complete(qkey_of(WIRE_A))
        assert not queue.idle               # still the worker
        queue.release_worker(wid)
        assert queue.idle


class TestJournal:
    def test_replay_resumes_pending_only(self, tmp_path):
        path = str(tmp_path / "queue.journal")
        q1 = WorkQueue(journal_path=path)
        q1.enqueue(WIRE_A)
        q1.enqueue(WIRE_B)
        q1.enqueue(WIRE_C)
        wid = q1.register_worker()
        q1.lease(wid, max_points=3)
        q1.complete(qkey_of(WIRE_A))
        q1.fail(qkey_of(WIRE_B), "crash", "boom", attempts=2)
        q1.close()                          # server "crashes" here

        q2 = WorkQueue(journal_path=path)
        # only the uncompleted, unfailed point is pending again
        assert q2.queued == 1
        assert q2.counters["replayed"] == 1
        assert qkey_of(WIRE_C) in q2.entries
        assert qkey_of(WIRE_A) in q2.completed
        assert q2.failed[qkey_of(WIRE_B)].kind == "crash"
        # and it is leasable immediately, attempts reset
        lease = q2.lease(q2.register_worker())
        assert lease.qkeys == {qkey_of(WIRE_C)}
        q2.close()

    def test_replay_tolerates_torn_final_line(self, tmp_path):
        path = str(tmp_path / "queue.journal")
        q1 = WorkQueue(journal_path=path)
        q1.enqueue(WIRE_A)
        q1.enqueue(WIRE_B)
        q1.complete(qkey_of(WIRE_A))
        q1.close()
        with open(path, "ab") as fh:        # crash mid-append
            fh.write(b'{"op": "complete", "qk')
        pending, completed, failed = QueueJournal.replay(path)
        assert set(pending) == {qkey_of(WIRE_B)}
        assert completed == {qkey_of(WIRE_A)}
        assert failed == {}

    def test_replay_tolerates_garbage_lines(self, tmp_path):
        path = tmp_path / "queue.journal"
        path.write_bytes(
            b"\x00\xff garbage\n"
            + json.dumps({"op": "enqueue", "qkey": qkey_of(WIRE_A),
                          "wire": WIRE_A}).encode() + b"\n"
            + b'["not", "an", "object"]\n'
            + b'{"op": "mystery", "qkey": "x"}\n')
        pending, completed, failed = QueueJournal.replay(str(path))
        assert set(pending) == {qkey_of(WIRE_A)}

    def test_missing_journal_is_empty_not_an_error(self, tmp_path):
        pending, completed, failed = QueueJournal.replay(
            str(tmp_path / "nope.journal"))
        assert (pending, completed, failed) == ({}, set(), {})

    def test_resubmit_after_failure_gets_fresh_budget(self, tmp_path):
        path = str(tmp_path / "queue.journal")
        q1 = WorkQueue(journal_path=path)
        q1.enqueue(WIRE_A)
        wid = q1.register_worker()
        q1.lease(wid)
        q1.fail(qkey_of(WIRE_A), "crash", "boom", attempts=2)
        # a fresh submission of a quarantined point re-enqueues it
        entry, created = q1.enqueue(WIRE_A)
        assert created and entry.attempts == 0
        assert qkey_of(WIRE_A) not in q1.failed
        q1.close()


def test_default_ttl_is_sane():
    assert 0 < DEFAULT_LEASE_TTL <= 300
