"""Tests for the automatic CIR-critical-path scheduler (the paper's
Section IV-G optimization, automated as compiler passes)."""

import pytest

from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.lang.parser import parse
from repro.lang.passes.depend import analyze_unit_loops
from repro.lang.passes.schedule import (reorder_loop_statements,
                                        stmt_effects)
from repro.lang.ast_nodes import For, walk_stmts
from repro.lang.sema import Sema
from repro.sim import Memory
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

IOX = SystemConfig("io+x", IO, lpsu=LPSUConfig())


def loop_of(src):
    unit = parse(src)
    Sema(unit).run()
    analyze_unit_loops(unit)
    return next(s for s in walk_stmts(unit.functions[0].body)
                if isinstance(s, For) and s.annotation)


DITHERISH = """
void k(int* g, int* out, int* nxt, int n) {
    int err = 0;
    #pragma xloops ordered
    for (int x = 0; x < n; x++) {
        int old = g[x] + err;
        int pix = 0;
        if (old > 127) { pix = 255; }
        out[x] = pix;
        int diff = old - pix;
        nxt[x] = diff / 4;
        err = (diff * 7) / 16;
    }
}
"""


class TestStatementReorder:
    def test_hoists_cir_update_over_stores(self):
        loop = loop_of(DITHERISH)
        body = loop.body
        new = reorder_loop_statements(body, loop.cir_symbols)
        order = [body.index(s) for s in new]
        # the err update (last statement) must move above at least one
        # of the non-critical stores
        assert order != list(range(len(body)))
        err_pos = order.index(len(body) - 1)
        assert err_pos < len(body) - 1

    def test_preserves_dependences(self):
        loop = loop_of(DITHERISH)
        body = loop.body
        new = reorder_loop_statements(body, loop.cir_symbols)
        order = [body.index(s) for s in new]
        # diff (index 4) must stay after old (0) and pix (1, 2)
        assert order.index(4) > order.index(0)
        assert order.index(4) > order.index(2)
        # the out store still reads pix after it is final
        assert order.index(3) > order.index(2)

    def test_no_cirs_is_identity(self):
        loop = loop_of(DITHERISH)
        assert reorder_loop_statements(loop.body, ()) is loop.body

    def test_barrier_statements_pin(self):
        src = """
int k(int* a, int n) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        a[i] = i;
        acc = acc + a[i];
        if (acc > 100) { break; }
    }
    return acc;
}
"""
        loop = loop_of(src)
        new = reorder_loop_statements(loop.body, loop.cir_symbols)
        # the break-containing If stays last
        assert new[-1] is loop.body[-1]

    def test_effects_collection(self):
        loop = loop_of(DITHERISH)
        fx = stmt_effects(loop.body[0])      # int old = g[x] + err;
        names = {s.name for s in fx.reads}
        assert "err" in names and "g" in names
        assert fx.mem_read and not fx.mem_write
        fx_store = stmt_effects(loop.body[3])  # out[x] = pix;
        assert fx_store.mem_write


class TestEndToEnd:
    def _cycles(self, name, **kw):
        spec = get_kernel(name)
        cp = compile_source(spec.source, **kw)
        wl = spec.workload("tiny")
        mem = Memory()
        args = wl.apply(mem)
        r = simulate(cp.program, IOX, entry=spec.entry, args=args,
                     mem=mem, mode="specialized")
        wl.check(mem)
        return r.cycles

    def test_auto_matches_hand_optimized_dither(self):
        base = self._cycles("dither-or")
        auto = self._cycles("dither-or", schedule_cirs=True)
        hand = self._cycles("dither-or-opt")
        assert auto < base
        assert auto <= hand * 1.02   # fully recovers the hand gain

    def test_scheduling_never_breaks_correctness(self):
        # every or/orm kernel still verifies with scheduling on
        for name in ("sha-or", "adpcm-or", "kmeans-or", "covar-or",
                     "mm-orm", "stencil-orm"):
            self._cycles(name, schedule_cirs=True)

    def test_scheduling_never_hurts_much(self):
        for name in ("sha-or", "kmeans-or", "covar-or"):
            base = self._cycles(name)
            auto = self._cycles(name, schedule_cirs=True)
            assert auto <= base * 1.05, name
