"""Long branchy/aperiodic kernels (vector-backend headliners).

The :mod:`sources_turbo` kernels are deliberately branch-free so their
iteration schedules repeat and the turbo tier's segment replay engages.
These are the opposite shape: long ``xloop.uc`` loops whose bodies
take data-dependent branches on effectively random inputs, so no two
consecutive iterations share a schedule and the turbo memo goes dead
immediately.  That is exactly the gap the vector tier's whole-block
batching fills, so these kernels anchor the ``branchy`` section of the
per-backend speed benchmark (``benchmarks/bench_speed.py``) alongside
the Table II irregulars (hsort-ua, bfs-uc, ssearch-de).

Both bodies are integer-only and register-private between their load
and store, so the dependence prover certifies the ``unordered`` pragma
exactly like any other elementwise loop.
"""

from __future__ import annotations

from .base import KernelSpec, Workload, region, rng_for, scale_select

MASK32 = 0xFFFFFFFF


def _s32(v):
    v &= MASK32
    return v - (1 << 32) if v & 0x80000000 else v

# ---------------------------------------------------------------------------
# bmix-uc: branchy integer mixing (hash-like avalanche with data-
# dependent arms; the Collatz-style odd/even split keeps the branch
# history aperiodic for any non-degenerate input)
# ---------------------------------------------------------------------------

BMIX_SRC = """
void bmix(int* x, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int a = x[i] ^ 23456;
        a = a + (a << 3);
        a = a ^ (a >> 5);
        if ((a & 1) == 1) { a = a * 3 + 1; } else { a = a >> 1; }
        if (a < 0) { a = 0 - a; }
        a = a + (a << 2);
        a = a ^ (a >> 7);
        if ((a & 15) == 7) { a = a + x[i]; }
        z[i] = a;
    }
}
"""


def _bmix_ref(xv):
    a = _s32(xv ^ 23456)
    a = _s32(a + _s32(a << 3))
    a = _s32(a ^ (a >> 5))
    if a & 1:
        a = _s32(a * 3 + 1)
    else:
        a = a >> 1
    if a < 0:
        a = _s32(-a)
    a = _s32(a + _s32(a << 2))
    a = _s32(a ^ (a >> 7))
    if (a & 15) == 7:
        a = _s32(a + _s32(xv))
    return a & MASK32


def _bmix_make(scale, seed):
    n = scale_select(scale, 48, 4096, 131072)
    rng = rng_for(seed, "bmix")
    x = [rng.randrange(1 << 32) for _ in range(n)]
    # 131072 words fill two region slots each at large scale
    xa, za = region(0), region(2)

    def init(mem):
        mem.write_words(xa, x)

    def verify(mem):
        got = mem.read_words(za, n)
        for i in range(n):
            assert got[i] == _bmix_ref(_s32(x[i])), i

    return Workload(args=[xa, za, n], init=init, verify=verify)


BMIX = KernelSpec(
    name="bmix-uc", suite="C", loop_types=("uc",),
    source=BMIX_SRC, entry="bmix", make=_bmix_make,
    description="branchy integer mixing (aperiodic branch history)")

# ---------------------------------------------------------------------------
# qclip-uc: piecewise-linear companding clip (sign split + two
# data-dependent knees, like a soft audio limiter)
# ---------------------------------------------------------------------------

QCLIP_SRC = """
void qclip(int* x, int* z, int n, int lo, int hi) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int v = x[i];
        int m = 0;
        if (v < 0) { v = 0 - v; m = 1; }
        if (v > hi) { v = hi + ((v - hi) >> 4); }
        if (v > lo) { v = lo + ((v - lo) >> 1); }
        v = v + (v << 1) + 9;
        v = v ^ (v >> 3);
        if (m == 1) { v = 0 - v; }
        z[i] = v;
    }
}
"""

_QCLIP_LO = 6000
_QCLIP_HI = 24000


def _qclip_ref(xv, lo, hi):
    v = xv
    m = 0
    if v < 0:
        v = _s32(-v)
        m = 1
    if v > hi:
        v = _s32(hi + ((v - hi) >> 4))
    if v > lo:
        v = _s32(lo + ((v - lo) >> 1))
    v = _s32(v + _s32(v << 1) + 9)
    v = _s32(v ^ (v >> 3))
    if m == 1:
        v = _s32(-v)
    return v & MASK32


def _qclip_make(scale, seed):
    n = scale_select(scale, 48, 4096, 131072)
    rng = rng_for(seed, "qclip")
    x = [rng.randrange(-(1 << 16), 1 << 16) for _ in range(n)]
    # 131072 words fill two region slots each at large scale
    xa, za = region(0), region(2)

    def init(mem):
        mem.write_words(xa, [v & MASK32 for v in x])

    def verify(mem):
        got = mem.read_words(za, n)
        for i in range(n):
            assert got[i] == _qclip_ref(x[i], _QCLIP_LO, _QCLIP_HI), i

    return Workload(args=[xa, za, n, _QCLIP_LO, _QCLIP_HI],
                    init=init, verify=verify)


QCLIP = KernelSpec(
    name="qclip-uc", suite="C", loop_types=("uc",),
    source=QCLIP_SRC, entry="qclip", make=_qclip_make,
    description="piecewise-linear companding clip (branchy stream)")

#: the vector-backend benchmark kernels
VECTOR_KERNELS = (BMIX, QCLIP)
