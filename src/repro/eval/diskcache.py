"""Persistent, content-addressed cache for simulation results.

A cache record is one pickled :class:`~repro.eval.runner.KernelRun`
stored under ``<cache-dir>/<key[:2]>/<key>.pkl``, where *key* is the
SHA-256 of everything that determines the result bit-for-bit:

* the kernel's MiniC source (and serial source, when that is the
  binary being simulated),
* the full platform configuration (``repr`` of the frozen
  :class:`~repro.uarch.params.SystemConfig` tree),
* the package version (stale results die on upgrade),
* the run parameters (mode, binary, xi, scale, seed, scheduling).

Because the key is derived from content rather than names, editing a
kernel or a config invalidates exactly the affected points.

Writes are process-safe: records are written to a temporary file in
the destination directory and published with :func:`os.replace`, so a
concurrent reader sees either nothing or a complete record, and two
workers racing on the same point both write the same bytes.

Records are integrity-checked: the on-disk format is a ``RPR1`` magic,
the SHA-256 of the pickled payload, then the payload itself.  A record
that fails its checksum or does not unpickle (truncation, bit rot, a
crashed writer that somehow bypassed the atomic rename) is *never*
served: it counts as a miss and is moved to ``<cache-dir>/quarantine/``
for post-mortem instead of being silently trusted or deleted.  Bare
pickle records from older versions are still readable.  ``repro cache
fsck`` (:func:`fsck`) audits the whole cache offline.

Environment knobs (read at call time, so they work for forked pool
workers too):

``REPRO_CACHE_DIR``
    overrides the default ``~/.cache/repro`` location.
``REPRO_NO_CACHE``
    any of ``1/true/yes`` disables the disk cache entirely (used by CI
    to stay hermetic).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

_TRUTHY = ("1", "true", "yes", "on")

#: process-local override (set by :func:`configure`); beats the env var
_dir_override = None
_force_disabled = False

#: process-local counters, reported in sweep summaries
stats = {"hits": 0, "misses": 0, "writes": 0, "errors": 0,
         "corrupt": 0, "quarantined": 0}

#: record-format magic: MAGIC + sha256(payload) + payload
MAGIC = b"RPR1"


def configure(cache_dir=None, enabled=None):
    """Set the cache directory and/or force-disable the disk cache for
    this process (and, via the environment, for forked workers)."""
    global _dir_override, _force_disabled
    if cache_dir is not None:
        _dir_override = str(cache_dir)
        os.environ[ENV_CACHE_DIR] = str(cache_dir)
    if enabled is not None:
        _force_disabled = not enabled
        if enabled:
            os.environ.pop(ENV_NO_CACHE, None)
        else:
            os.environ[ENV_NO_CACHE] = "1"


def reset_stats():
    for k in stats:
        stats[k] = 0


def enabled():
    if _force_disabled:
        return False
    return os.environ.get(ENV_NO_CACHE, "").lower() not in _TRUTHY


def cache_dir():
    if _dir_override:
        return _dir_override
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


#: memoized fingerprint of the package's own source code
_code_fp = None


def code_fingerprint():
    """SHA-256 over every ``.py`` file in the installed ``repro``
    package (path + contents, in sorted order).

    Folded into every :func:`cache_key`, this guarantees a result
    simulated by *older code* is never served after any source change
    -- even an unreleased, unversioned edit during development.  The
    version string alone only protects across releases."""
    global _code_fp
    if _code_fp is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                h.update(os.path.relpath(path, root).encode("utf-8"))
                try:
                    with open(path, "rb") as f:
                        h.update(f.read())
                except OSError:
                    pass
        _code_fp = h.hexdigest()
    return _code_fp


def cache_key(*parts):
    """SHA-256 fingerprint of the ``repr`` of *parts*, salted with
    :func:`code_fingerprint`."""
    payload = code_fingerprint() + repr(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _record_path(key):
    return os.path.join(cache_dir(), key[:2], key + ".pkl")


class CorruptRecord(Exception):
    """A cache record failed its checksum or did not deserialize."""


def _decode(blob):
    """Deserialize one on-disk record (checksummed or legacy bare
    pickle); raises :class:`CorruptRecord` on any damage."""
    if blob.startswith(MAGIC):
        digest, payload = blob[4:36], blob[36:]
        if len(digest) != 32 \
                or hashlib.sha256(payload).digest() != digest:
            raise CorruptRecord("checksum mismatch")
    else:
        payload = blob   # legacy record: bare pickle, best effort
    try:
        return pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError, TypeError,
            MemoryError) as exc:
        raise CorruptRecord("%s: %s" % (type(exc).__name__, exc))


def _quarantine(path):
    """Move a damaged record to ``<cache-dir>/quarantine/`` for
    post-mortem; returns the destination (or None if the move
    failed -- the record is then simply left in place)."""
    qdir = os.path.join(cache_dir(), "quarantine")
    try:
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, os.path.basename(path))
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = os.path.join(qdir,
                                "%s.%d" % (os.path.basename(path), n))
        os.replace(path, dest)
    except OSError:
        return None
    stats["quarantined"] += 1
    return dest


def load(key):
    """Return the cached object for *key*, or None.  A truncated,
    checksum-failing, or otherwise unreadable record counts as a miss
    and is quarantined (the caller re-simulates and overwrites)."""
    if not enabled():
        return None
    path = _record_path(key)
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError:
        stats["misses"] += 1
        return None
    try:
        obj = _decode(blob)
    except CorruptRecord:
        stats["corrupt"] += 1
        stats["misses"] += 1
        _quarantine(path)
        return None
    stats["hits"] += 1
    return obj


def store(key, obj):
    """Atomically publish *obj* under *key* (write-to-temp + rename),
    wrapped in the checksummed record format."""
    if not enabled():
        return False
    path = _record_path(key)
    directory = os.path.dirname(path)
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(MAGIC)
                f.write(hashlib.sha256(payload).digest())
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        stats["errors"] += 1
        return False
    stats["writes"] += 1
    return True


def _iter_records():
    """Yield ``(path, size, mtime)`` for every record on disk."""
    root = cache_dir()
    if not os.path.isdir(root):
        return
    for sub in sorted(os.listdir(root)):
        subdir = os.path.join(root, sub)
        if not (len(sub) == 2 and os.path.isdir(subdir)):
            continue
        for name in sorted(os.listdir(subdir)):
            if not (name.endswith(".pkl") or name.endswith(".tmp")):
                continue
            path = os.path.join(subdir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            yield path, st.st_size, st.st_mtime


def disk_stats():
    """Totals for the on-disk cache: record count and byte size."""
    records = 0
    total = 0
    for _path, size, _mtime in _iter_records():
        records += 1
        total += size
    return {"dir": cache_dir(), "records": records, "bytes": total}


def fsck(remove_stale_tmp=True, tmp_age=300.0):
    """Audit every record on disk: verify checksums, quarantine
    damaged records, and sweep stale ``.tmp`` droppings older than
    *tmp_age* seconds (a crashed writer's leftovers; young ones may
    belong to a live writer and are kept).

    Returns a report dict: ``checked``, ``ok``, ``legacy`` (readable
    pre-checksum records), ``corrupt``, ``quarantined`` (destination
    paths), ``stale_tmp`` (removed count).
    """
    import time
    report = {"dir": cache_dir(), "checked": 0, "ok": 0, "legacy": 0,
              "corrupt": 0, "quarantined": [], "stale_tmp": 0}
    now = time.time()
    for path, _size, mtime in list(_iter_records()):
        if path.endswith(".tmp"):
            if remove_stale_tmp and now - mtime > tmp_age:
                try:
                    os.unlink(path)
                    report["stale_tmp"] += 1
                except OSError:
                    pass
            continue
        report["checked"] += 1
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError:
            continue
        try:
            _decode(blob)
        except CorruptRecord:
            report["corrupt"] += 1
            stats["corrupt"] += 1
            dest = _quarantine(path)
            if dest:
                report["quarantined"].append(dest)
            continue
        report["ok"] += 1
        if not blob.startswith(MAGIC):
            report["legacy"] += 1
    return report


def prune(max_bytes):
    """Shrink the cache to at most *max_bytes* by deleting the
    least-recently-touched records first (loads don't update mtime, so
    this approximates oldest-first).  Returns ``(removed, freed)``."""
    entries = sorted(_iter_records(), key=lambda e: e[2], reverse=True)
    kept = 0
    removed = 0
    freed = 0
    for path, size, _mtime in entries:
        if kept + size <= max_bytes:
            kept += size
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        removed += 1
        freed += size
    return removed, freed


def clear():
    """Delete every cache record under the active cache directory."""
    root = cache_dir()
    if not os.path.isdir(root):
        return 0
    removed = 0
    for sub in os.listdir(root):
        subdir = os.path.join(root, sub)
        if not (len(sub) == 2 and os.path.isdir(subdir)):
            continue
        for name in os.listdir(subdir):
            if name.endswith(".pkl") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(subdir, name))
                    removed += 1
                except OSError:
                    pass
        try:
            os.rmdir(subdir)
        except OSError:
            pass
    return removed
