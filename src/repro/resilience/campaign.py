"""Seeded fault-injection campaigns over the specialized execution
pipeline.

A campaign is three deterministic steps:

1. **Profile** each kernel once, clean, with the invariant monitor on
   and an event-counting injector attached: this yields the observer-
   event count (the trigger space), the clean cycle count (the
   livelock budget), and the clean final-memory fingerprint (the
   masked/SDC discriminator).

2. **Plan** ``count`` faults with a seeded :class:`random.Random`:
   kernels round-robin so every loop-dependence pattern is exercised,
   targets/triggers/selectors drawn from the seeded stream.  The plan
   depends only on (seed, kernels, targets, count, profiles), so the
   same seed replays the same campaign bit-for-bit.

3. **Run** each fault in a fresh simulator under the invariant monitor
   plus cycle-budget and wall-clock watchdogs, and classify:

   ``detected``
       the monitor raised an :class:`~repro.verify.InvariantViolation`
       (with cycle/lane attribution).
   ``hang``
       a cycle budget (:class:`~repro.sim.LivelockError`) or wall-clock
       deadline (:class:`~repro.resilience.watchdog.DeadlineExceeded`)
       expired.
   ``crash``
       any other exception escaped the simulator.
   ``masked``
       the run completed and final memory matches the clean reference.
   ``sdc``
       silent data corruption: the run completed, nothing was raised,
       but final memory differs from the clean reference.

The headline number is the **detection rate**: of the faults that were
architecturally visible at the end of the run (``detected + sdc``),
what fraction did the monitor catch?
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernels import get_kernel
from ..sim import LivelockError, Memory
from ..uarch import SystemSimulator
from ..verify import InvariantViolation
from .faults import FAULT_TARGETS, FaultInjector, FaultSpec
from .watchdog import DeadlineExceeded, deadline

#: classification buckets, in report order
OUTCOMES = ("masked", "detected", "sdc", "hang", "crash")

#: one kernel per supported inter-iteration dependence pattern
#: (unordered-concurrent, ordered-register, ordered-memory,
#: ordered-register+memory, unordered-atomic)
DEFAULT_KERNELS = ("sgemm-uc", "dither-or", "ksack-sm-om",
                   "stencil-orm", "hsort-ua")


class CampaignError(Exception):
    """The campaign could not be set up (e.g. a kernel never runs
    specialized at the chosen scale, so there is nothing to inject
    into)."""


@dataclass
class CampaignConfig:
    """Everything a campaign depends on; all fields feed the plan."""

    kernels: Sequence[str] = DEFAULT_KERNELS
    config: str = "io+x"
    scale: str = "tiny"
    workload_seed: int = 0
    seed: int = 0
    count: int = 200
    targets: Sequence[str] = FAULT_TARGETS
    #: livelock budget multiplier over the clean run's cycle count
    cycle_slack: int = 64
    #: per-injection wall-clock bound, seconds (0 disables)
    timeout: float = 30.0


@dataclass
class KernelProfile:
    """Clean-run reference data for one kernel."""

    kernel: str
    events: int        # total observer events (the trigger space)
    cycles: int        # clean end-to-end cycle count
    fingerprint: str   # clean final-memory sha256


@dataclass
class InjectionOutcome:
    """One fault, fully attributed."""

    kernel: str
    spec: FaultSpec
    outcome: str               # one of OUTCOMES
    detail: str                # exception text / mutation description
    mutation: str = ""         # what the injector actually flipped
    injected_cycle: int = -1   # LPSU cycle the fault landed on
    fell_back: bool = False    # planned target was empty -> reg fault
    detected_check: str = ""   # InvariantViolation.check
    detected_cycle: int = -1
    detected_lane: int = -1
    detected_iteration: int = -1


@dataclass
class CampaignReport:
    """Aggregated campaign results (deterministic for a given seed)."""

    config: CampaignConfig
    profiles: Dict[str, KernelProfile]
    outcomes: List[InjectionOutcome] = field(default_factory=list)

    # -- aggregation ------------------------------------------------------

    def counts(self):
        out = {name: 0 for name in OUTCOMES}
        for rec in self.outcomes:
            out[rec.outcome] += 1
        return out

    def counts_by_target(self):
        table = {}
        for rec in self.outcomes:
            target = rec.spec.target
            row = table.setdefault(target,
                                   {name: 0 for name in OUTCOMES})
            row[rec.outcome] += 1
        return table

    @property
    def detection_rate(self):
        """detected / (detected + sdc): of the faults visible in final
        architectural state, the fraction the monitor caught."""
        counts = self.counts()
        visible = counts["detected"] + counts["sdc"]
        return counts["detected"] / visible if visible else 1.0

    # -- serialization ----------------------------------------------------

    def to_dict(self):
        return {
            "config": {
                "kernels": list(self.config.kernels),
                "config": self.config.config,
                "scale": self.config.scale,
                "workload_seed": self.config.workload_seed,
                "seed": self.config.seed,
                "count": self.config.count,
                "targets": list(self.config.targets),
                "cycle_slack": self.config.cycle_slack,
            },
            "profiles": {
                name: {"events": p.events, "cycles": p.cycles,
                       "fingerprint": p.fingerprint}
                for name, p in sorted(self.profiles.items())},
            "counts": self.counts(),
            "counts_by_target": self.counts_by_target(),
            "detection_rate": self.detection_rate,
            "injections": [
                {"kernel": rec.kernel,
                 "spec": rec.spec.describe(),
                 "outcome": rec.outcome,
                 "mutation": rec.mutation,
                 "injected_cycle": rec.injected_cycle,
                 "fell_back": rec.fell_back,
                 "detail": rec.detail,
                 "detected_check": rec.detected_check,
                 "detected_cycle": rec.detected_cycle,
                 "detected_lane": rec.detected_lane,
                 "detected_iteration": rec.detected_iteration}
                for rec in self.outcomes],
        }

    def fingerprint(self):
        """SHA-256 over the canonical JSON of the full report; two
        runs of the same campaign must agree bit-for-bit."""
        import hashlib
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self):
        """Human-readable summary table."""
        lines = []
        counts = self.counts()
        total = len(self.outcomes)
        lines.append("fault-injection campaign: %d injections, seed %d"
                     % (total, self.config.seed))
        lines.append("kernels: %s  (config %s, scale %s)"
                     % (", ".join(self.config.kernels),
                        self.config.config, self.config.scale))
        lines.append("")
        header = "%-8s" % "target" + "".join(
            "%10s" % name for name in OUTCOMES) + "%10s" % "total"
        lines.append(header)
        lines.append("-" * len(header))
        by_target = self.counts_by_target()
        for target in sorted(by_target):
            row = by_target[target]
            lines.append("%-8s" % target
                         + "".join("%10d" % row[name]
                                   for name in OUTCOMES)
                         + "%10d" % sum(row.values()))
        lines.append("-" * len(header))
        lines.append("%-8s" % "all"
                     + "".join("%10d" % counts[name]
                               for name in OUTCOMES)
                     + "%10d" % total)
        lines.append("")
        visible = counts["detected"] + counts["sdc"]
        lines.append("monitor detection rate: %d/%d visible faults "
                     "= %.1f%%"
                     % (counts["detected"], visible,
                        100.0 * self.detection_rate))
        lines.append("report fingerprint: %s" % self.fingerprint())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# campaign machinery
# ---------------------------------------------------------------------------


def _fresh(kernel, cfg):
    """A pristine (spec, compiled, workload, memory, args, sysconfig)
    for one simulation attempt."""
    # runner._compiled is the process-wide compile cache; importing
    # lazily avoids a cycle (runner -> uarch -> ... -> resilience)
    from ..eval import runner
    from ..eval.configs import config as named_config
    spec = get_kernel(kernel)
    compiled = runner._compiled(kernel, "xloops", True)
    workload = spec.workload(cfg.scale, cfg.workload_seed)
    mem = Memory()
    args = workload.apply(mem)
    return spec, compiled, workload, mem, args, named_config(cfg.config)


def profile_kernel(kernel, cfg):
    """Clean verified run with an event-counting injector attached."""
    spec, compiled, workload, mem, args, sysconfig = _fresh(kernel, cfg)
    counter = FaultInjector(None)
    sim = SystemSimulator(compiled.program, sysconfig, mem=mem,
                          verify=True, injector=counter)
    result = sim.run(entry=spec.entry, args=args, mode="specialized")
    workload.check(mem)
    if counter.events == 0:
        raise CampaignError(
            "kernel %r never ran specialized at scale %r: no observer "
            "events to inject into" % (kernel, cfg.scale))
    return KernelProfile(kernel=kernel, events=counter.events,
                         cycles=result.cycles,
                         fingerprint=mem.fingerprint())


def plan_campaign(cfg, profiles):
    """The seeded fault plan: a list of (kernel, FaultSpec)."""
    rng = random.Random(cfg.seed)
    kernels = [k for k in cfg.kernels if profiles[k].events > 0]
    plan: List[Tuple[str, FaultSpec]] = []
    for i in range(cfg.count):
        kernel = kernels[i % len(kernels)]
        profile = profiles[kernel]
        plan.append((kernel, FaultSpec(
            target=cfg.targets[rng.randrange(len(cfg.targets))],
            trigger=rng.randrange(profile.events),
            lane=rng.randrange(64),
            index=rng.randrange(64),
            bit=rng.randrange(32),
            offset=rng.randrange(4096))))
    return plan


def run_injection(kernel, fault, cfg, profile):
    """One fault, one fresh simulator, one classified outcome."""
    spec, compiled, workload, mem, args, sysconfig = _fresh(kernel, cfg)
    injector = FaultInjector(fault)
    budget = profile.cycles * cfg.cycle_slack + 100_000
    sim = SystemSimulator(compiled.program, sysconfig, mem=mem,
                          verify=True, injector=injector,
                          max_cycles=budget)
    outcome = None
    detail = ""
    detected = {}
    try:
        with deadline(cfg.timeout):
            sim.run(entry=spec.entry, args=args, mode="specialized")
    except InvariantViolation as exc:
        outcome = "detected"
        detail = str(exc)
        detected = {"detected_check": exc.check,
                    "detected_cycle": exc.cycle if exc.cycle is not None
                    else -1,
                    "detected_lane": exc.lane if exc.lane is not None
                    else -1,
                    "detected_iteration": exc.iteration
                    if exc.iteration is not None else -1}
    except (LivelockError, DeadlineExceeded) as exc:
        outcome = "hang"
        detail = "%s: %s" % (type(exc).__name__, exc)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        outcome = "crash"
        detail = "%s: %s" % (type(exc).__name__, exc)
    else:
        if mem.fingerprint() == profile.fingerprint:
            outcome = "masked"
        else:
            outcome = "sdc"
            detail = "final memory differs from clean reference"

    record = injector.record
    return InjectionOutcome(
        kernel=kernel, spec=fault, outcome=outcome, detail=detail,
        mutation=record.mutation, injected_cycle=record.cycle,
        fell_back=record.fell_back, **detected)


def run_campaign(cfg=None, progress=None):
    """Profile, plan, and execute a full campaign.

    *progress* is an optional ``f(done, total, outcome)`` callback for
    CLI feedback.  Returns a :class:`CampaignReport`.
    """
    cfg = cfg or CampaignConfig()
    unknown = set(cfg.targets) - set(FAULT_TARGETS)
    if unknown:
        raise CampaignError("unknown fault targets: %s"
                            % ", ".join(sorted(unknown)))
    profiles = {kernel: profile_kernel(kernel, cfg)
                for kernel in cfg.kernels}
    plan = plan_campaign(cfg, profiles)
    report = CampaignReport(config=cfg, profiles=profiles)
    for i, (kernel, fault) in enumerate(plan):
        result = run_injection(kernel, fault, cfg, profiles[kernel])
        report.outcomes.append(result)
        if progress is not None:
            progress(i + 1, len(plan), result)
    return report
