"""Single-issue in-order GPP timing model (the paper's ``io``).

An online model: the system simulator feeds it the dynamic instruction
stream (:class:`~repro.sim.functional.StepInfo`) in execution order and
it advances a cycle count using a register scoreboard, the shared L1
model, a bimodal predictor, and the common latency table.
"""

from __future__ import annotations

from ..isa.instructions import FU
from .branch import BimodalPredictor, make_predictor
from .cache import L1Cache
from .params import GPPConfig


class InOrderTiming:
    """Scoreboarded single-issue pipeline timing."""

    def __init__(self, config, cache=None, events=None, predictor=None):
        self.config = config
        self.lat = config.latencies
        self.cache = cache if cache is not None else L1Cache(config.cache)
        self.events = events
        self.predictor = predictor or make_predictor(
            config.bpred_kind, config.bpred_entries)
        self.cycle = 0                  # next issue opportunity
        self.reg_ready = [0] * 32
        self.retired = 0
        self.stall_raw = 0
        self.stall_mem = 0
        self.stall_branch = 0

    def consume(self, step):
        """Account one dynamic instruction; returns its issue cycle."""
        instr = step.instr
        op = instr.op
        ev = self.events
        srcs = instr.src_regs()
        if ev is not None:
            ev.ic_access += 1
            for s in srcs:
                if s:
                    ev.rf_read += 1

        cycle = self.cycle
        reg_ready = self.reg_ready
        issue = cycle
        for s in srcs:
            t = reg_ready[s]
            if t > issue:
                issue = t
        self.stall_raw += issue - cycle

        latency = 1
        if op.is_mem:
            if op.is_fence:
                latency = 1
            else:
                hit_extra = self.cache.access(step.addr,
                                              is_store=op.is_store)
                if op.is_amo:
                    latency = self.lat.amo + (hit_extra
                                              - self.cache.config.hit_latency)
                elif op.is_load:
                    latency = hit_extra
                else:
                    latency = self.lat.store
                if ev is not None:
                    ev.dc_access += 1
                    if hit_extra > self.cache.config.hit_latency:
                        ev.dc_miss += 1
                        self.stall_mem += (hit_extra
                                           - self.cache.config.hit_latency)
        elif op.fu != FU.ALU and op.fu != FU.BR and op.fu != FU.XLOOP:
            latency = self.lat.for_fu(op.fu)

        if ev is not None:
            self._count_fu(ev, op)

        done = issue + latency
        dst = instr.dst_reg()
        if dst is not None:
            reg_ready[dst] = done
            if ev is not None:
                ev.rf_write += 1

        next_issue = issue + 1
        if op.is_branch or op.is_xloop:
            if ev is not None:
                ev.bpred += 1
            wrong = self.predictor.predict_and_update(step.pc, step.taken)
            if wrong:
                next_issue += self.config.mispredict_penalty
                self.stall_branch += self.config.mispredict_penalty
        elif op.is_jump:
            # jal targets are known in decode; jalr uses a return-address
            # stack we model as ideal -> one redirect bubble either way
            next_issue += 1
            self.stall_branch += 1

        self.cycle = next_issue
        self.retired += 1
        return issue

    def _count_fu(self, ev, op):
        fu = op.fu
        if fu == FU.ALU:
            ev.alu_op += 1
        elif fu == FU.MUL:
            ev.mul_op += 1
        elif fu == FU.DIV:
            ev.div_op += 1
        elif fu == FU.FPU:
            ev.fpu_op += 1
        elif fu == FU.FDIV:
            ev.fdiv_op += 1
        elif fu == FU.BR or fu == FU.XLOOP:
            ev.alu_op += 1

    @property
    def cycles(self):
        """Cycles elapsed so far (time the last instruction issued +1)."""
        return self.cycle

    def advance(self, cycles):
        """Account externally-spent time (e.g. stalling while the LPSU
        runs a specialized phase)."""
        self.cycle += cycles
        floor = self.cycle
        for i, t in enumerate(self.reg_ready):
            if t < floor:
                self.reg_ready[i] = floor
