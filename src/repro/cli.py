"""Command-line interface: ``python -m repro <command>``.

Commands
--------
compile   compile an annotated MiniC file to XLOOPS assembly
disasm    compile and show the encoded words + disassembly
run       compile a MiniC file and simulate a function call
kernels   list the bundled Table II / Table IV application kernels
kernel    run one bundled kernel on a platform and report stats
table     regenerate one of the paper's tables/figures
sweep     run an artifact's simulation points in parallel, cached
          (or route them through a sweep server with --server)
serve     run the sweep-as-a-service result server: many clients,
          shared cache, global in-flight dedup, hardened workers
          (--distributed adds the durable work queue + lease table)
worker    pull leased point batches from a --distributed server,
          simulate them through the hardened engine, stream results
verify    traditional-vs-specialized differential conformance under
          the runtime invariant monitor
prove     symbolic dependence prover: certify every kernel's xloop
          pragmas, or refute them with concrete counterexamples
profile   cProfile one kernel simulation and print the hottest
          functions
inject    seeded fault-injection campaign over the LPSU's
          architectural state, classified against the monitor
isa       print the XLOOPS instruction-set extensions (Table I)
"""

from __future__ import annotations

import argparse
import sys

from .eval.configs import CONFIGS
from .sim.backends import BACKEND_CHOICES
from .uarch.system import MODES


def _add_platform_args(p):
    p.add_argument("--config", default="io+x", choices=sorted(CONFIGS),
                   help="platform configuration (default io+x)")
    p.add_argument("--mode", default="specialized", choices=MODES,
                   help="execution mode (default specialized)")


def _add_fast_arg(p):
    p.add_argument("--no-fast", action="store_true",
                   help="disable the verified simulator fast path "
                        "(equivalent to --backend interp); results "
                        "are bit-identical either way")
    p.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                   help="simulation backend ladder rung: interp "
                        "(reference), fused, turbo, vector (needs "
                        "numpy), or auto (highest available; the "
                        "default).  Exact-mode results are "
                        "bit-identical across rungs")


def _add_approx_arg(p):
    p.add_argument("--approx", type=float, default=0.0, metavar="EPS",
                   help="turbo only: accept documented timing drift "
                        "up to a fraction EPS on cache-phase "
                        "divergence in exchange for skipping miss "
                        "validation.  Design-space exploration only; "
                        "approx results are cached separately and "
                        "never serve exact requests")


def _apply_fast_arg(args):
    from .eval import runner
    if getattr(args, "no_fast", False):
        runner.set_default_fast(False)
        runner.set_default_backend("interp")
    elif getattr(args, "backend", None):
        runner.set_default_backend(args.backend)


def _add_cache_args(p):
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="fan simulation points across N worker "
                        "processes (default: in-process)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent result cache location "
                        "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the persistent result cache")


def _apply_cache_args(args):
    from .eval import diskcache
    if args.cache_dir:
        diskcache.configure(cache_dir=args.cache_dir)
    if args.no_cache:
        diskcache.configure(enabled=False)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XLOOPS (MICRO 2014) reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="MiniC -> XLOOPS assembly")
    p.add_argument("source", help="MiniC source file")
    p.add_argument("--gp", action="store_true",
                   help="compile for the GP ISA (ignore pragmas)")
    p.add_argument("--no-xi", action="store_true",
                   help="disable xi cross-iteration instructions")
    p.add_argument("--schedule", action="store_true",
                   help="enable automatic CIR-critical-path scheduling")
    p.add_argument("--auto-annotate", action="store_true",
                   help="run the symbolic dependence prover over "
                        "unannotated loops and specialize them with "
                        "proved patterns")

    p = sub.add_parser("disasm", help="show encodings + disassembly")
    p.add_argument("source", help="MiniC or .s assembly file")

    p = sub.add_parser("run", help="compile and simulate a call")
    p.add_argument("source", help="MiniC source file")
    p.add_argument("entry", help="function to call")
    p.add_argument("--auto-annotate", action="store_true",
                   help="specialize unannotated loops with "
                        "prover-certified patterns")
    p.add_argument("args", nargs="*", type=lambda v: int(v, 0),
                   help="integer arguments")
    _add_platform_args(p)
    _add_fast_arg(p)
    _add_approx_arg(p)

    sub.add_parser("kernels", help="list bundled application kernels")

    p = sub.add_parser("kernel", help="run one bundled kernel")
    p.add_argument("name", help="kernel name (see 'kernels')")
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--trace", action="store_true",
                   help="draw a per-cycle lane-occupancy diagram of "
                        "the first specialized xloop")
    p.add_argument("--trace-width", type=int, default=120)
    _add_platform_args(p)
    _add_fast_arg(p)
    _add_approx_arg(p)

    p = sub.add_parser("table", help="regenerate a paper artifact")
    p.add_argument("which",
                   choices=("table2", "table3", "table4", "table5", "fig5", "fig6",
                            "fig7", "fig9", "fig10"))
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--kernels", nargs="*",
                   help="restrict to these kernels")
    p.add_argument("--json", metavar="FILE",
                   help="also write the raw data as JSON")
    _add_cache_args(p)
    _add_fast_arg(p)

    p = sub.add_parser("sweep",
                       help="run a batch of simulation points "
                            "(parallel, cached)")
    p.add_argument("what", nargs="?", default="table2",
                   choices=("table2", "table4", "fig5", "fig6", "fig7",
                            "fig8", "fig9", "fig10", "all"),
                   help="which artifact's point set to run "
                        "(default table2)")
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kernels", nargs="*",
                   help="restrict to these kernels")
    p.add_argument("--quiet", action="store_true",
                   help="omit the per-point wall-time table")
    p.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                   help="per-point wall-clock bound; a worker over "
                        "budget is killed and the point retried "
                        "(default: unbounded)")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per point before it is "
                        "quarantined (default 3; the last attempt "
                        "disables the fast path)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="checkpoint completed points to FILE so an "
                        "interrupted sweep resumes where it stopped")
    p.add_argument("--server", metavar="ADDR",
                   help="route the sweep through a running sweep "
                        "server instead of executing locally (unix "
                        "socket path, unix:PATH, or host:port); "
                        "results are bit-identical to a local run")
    p.add_argument("--expect-served", type=float, default=None,
                   metavar="FRAC",
                   help="exit nonzero unless at least FRAC of the "
                        "points were cache-served (e.g. 0.95; CI "
                        "uses this to gate warm-sweep behaviour)")
    p.add_argument("--expect-sims", type=int, default=None, metavar="N",
                   help="exit nonzero if more than N points invoked "
                        "the simulator (0 asserts a fully warm sweep)")
    p.add_argument("--expect-sims-exact", type=int, default=None,
                   metavar="N",
                   help="exit nonzero unless exactly N points invoked "
                        "the simulator (the distributed chaos gate: "
                        "every miss simulated exactly once)")
    p.add_argument("--expect-points", type=int, default=None,
                   metavar="N",
                   help="exit nonzero unless exactly N points "
                        "completed successfully (zero lost points)")
    _add_cache_args(p)
    _add_fast_arg(p)

    p = sub.add_parser("serve",
                       help="run the sweep result server (async, "
                            "shared cache, deduped in-flight sims)")
    p.add_argument("--socket", metavar="PATH",
                   help="listen on a unix socket at PATH")
    p.add_argument("--listen", metavar="[HOST:]PORT",
                   help="listen on TCP (default 127.0.0.1:%d when "
                        "--socket is not given)" % 7340)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="max concurrent simulations (default: CPU "
                        "count); cache-served points are unbounded")
    p.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                   help="per-point wall-clock bound for simulations "
                        "(default: unbounded)")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per point before it is "
                        "quarantined (default 3)")
    p.add_argument("--idle-exit", type=float, default=0.0,
                   metavar="SEC",
                   help="exit after SEC seconds with no clients, "
                        "nothing in flight, no connected workers, no "
                        "unexpired leases and an empty queue "
                        "(default: run forever)")
    p.add_argument("--stop", metavar="ADDR",
                   help="ask the server at ADDR to shut down "
                        "gracefully (a distributed server drains its "
                        "queue and sends workers a drain frame "
                        "first), then exit")
    p.add_argument("--status", metavar="ADDR",
                   help="one-shot ping of the server at ADDR: print "
                        "live counters (served/simulated/inflight/"
                        "queued/workers/leases) and exit")
    p.add_argument("--json", action="store_true",
                   help="with --status: print the raw stats payload "
                        "as JSON")
    p.add_argument("--distributed", action="store_true",
                   help="serve cache misses from a durable work "
                        "queue pulled by 'repro worker' processes "
                        "instead of simulating locally")
    p.add_argument("--journal", metavar="FILE",
                   help="append-only fsync'd queue journal; a "
                        "restarted server replays it and resumes the "
                        "campaign without re-simulating completed "
                        "points (implies --distributed)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   metavar="SEC",
                   help="seconds a worker lease survives without a "
                        "heartbeat before its points are requeued "
                        "(default 30)")
    p.add_argument("--requeue-budget", type=int, default=5,
                   metavar="N",
                   help="times a point may be requeued after lease "
                        "losses before it quarantines as a "
                        "structured failure (default 5)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SEC",
                   help="max seconds a graceful --stop waits for "
                        "leases and queue to empty (default 30)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent result cache location "
                        "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the persistent cache (memo "
                        "and in-flight dedup only)")

    p = sub.add_parser("worker",
                       help="distributed sweep worker: pull leased "
                            "batches from a --distributed server, "
                            "simulate through the hardened engine, "
                            "stream results back")
    p.add_argument("--connect", required=True, metavar="ADDR",
                   help="server address (unix socket path, unix:PATH, "
                        "or host:port)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="concurrent hardened simulations inside this "
                        "worker (default 1)")
    p.add_argument("--name", default="", metavar="NAME",
                   help="worker name reported to the server "
                        "(default worker-<pid>)")
    p.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                   help="per-point wall-clock bound (default: "
                        "unbounded)")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per point before reporting it "
                        "failed (default 3)")
    p.add_argument("--poll", type=float, default=0.25, metavar="SEC",
                   help="idle re-poll interval when the queue is "
                        "empty (default 0.25)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent result cache location -- point "
                        "it at the server's cache so results are "
                        "shared (default ~/.cache/repro or "
                        "$REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="simulate without the persistent cache (the "
                        "server still stores shipped records)")
    _add_fast_arg(p)

    p = sub.add_parser("verify",
                       help="differential conformance: traditional vs "
                            "specialized under the invariant monitor")
    p.add_argument("kernels", nargs="*", metavar="KERNEL",
                   help="kernels to check (default: all registered; "
                        "see 'repro kernels')")
    p.add_argument("--all", action="store_true",
                   help="check every registered kernel (the default "
                        "when no kernels are named)")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "large"),
                   help="workload scale (default tiny)")
    p.add_argument("--seed", type=int, default=0,
                   help="dataset + loop-generator seed (default 0)")
    p.add_argument("--gen", type=int, default=0, metavar="N",
                   help="also check N randomly generated annotated "
                        "loops (default 0)")
    p.add_argument("--fast-slow", action="store_true",
                   help="instead check the simulator fast path "
                        "(fusion + schedule memoization) bit-identical "
                        "to the slow path: cycles, events, stats, and "
                        "final memory")
    p.add_argument("--ladder", action="store_true",
                   help="instead check the full backend ladder "
                        "(interp/fused/turbo, plus vector when numpy "
                        "is available) pairwise bit-identical per "
                        "point: cycles, events, stats, and final "
                        "memory; failures name the diverging tier")

    p = sub.add_parser("prove",
                       help="symbolic dependence prover: certify or "
                            "refute xloop pragmas")
    p.add_argument("kernels", nargs="*", metavar="KERNEL",
                   help="kernels to prove (default: all registered; "
                        "see 'repro kernels')")
    p.add_argument("--all", action="store_true",
                   help="prove every registered kernel (the default "
                        "when no kernels are named)")
    p.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="also cross-check the prover against "
                        "brute-force dependence enumeration on N "
                        "random affine loops")
    p.add_argument("--seed", type=int, default=0,
                   help="fuzz seed (default 0)")
    p.add_argument("--replay", action="store_true",
                   help="replay each refutation counterexample as a "
                        "directed differential conformance case")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="print per-pair certificates for every loop")
    p.add_argument("--json", metavar="FILE",
                   help="also write the proof records to FILE as JSON")

    p = sub.add_parser("profile",
                       help="profile one kernel simulation and print "
                            "the top cumulative hotspots")
    p.add_argument("name", metavar="KERNEL",
                   help="kernel name (see 'kernels')")
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "large"))
    p.add_argument("--top", type=int, default=20, metavar="N",
                   help="number of hotspots to print (default 20)")
    p.add_argument("--sort", default="cumulative",
                   choices=("cumulative", "tottime", "ncalls"),
                   help="pstats sort order (default cumulative)")
    _add_platform_args(p)
    _add_fast_arg(p)

    p = sub.add_parser("cache",
                       help="inspect, clear, or prune the persistent "
                            "result cache")
    p.add_argument("action", choices=("stats", "clear", "prune", "fsck"),
                   help="stats: show record count and size; clear: "
                        "delete everything; prune: drop the oldest "
                        "records down to --max-size; fsck: verify "
                        "every record's checksum, quarantine damage, "
                        "sweep stale temp files, rebuild the shard "
                        "indexes")
    p.add_argument("--max-size", metavar="SIZE",
                   help="prune target, e.g. 256M, 2G, or bytes "
                        "(required for 'prune')")
    p.add_argument("--json", action="store_true",
                   help="stats only: emit the full report as JSON "
                        "(per-shard distribution + hot-tier counters)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="cache location (default ~/.cache/repro or "
                        "$REPRO_CACHE_DIR)")

    p = sub.add_parser("inject",
                       help="seeded fault-injection campaign: corrupt "
                            "architectural state mid-run and classify "
                            "what the invariant monitor catches")
    p.add_argument("--count", type=int, default=200, metavar="N",
                   help="number of injections (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; the same seed replays the "
                        "same campaign bit-for-bit (default 0)")
    p.add_argument("--kernels", nargs="*", metavar="KERNEL",
                   help="kernels to inject into (default: one per "
                        "loop-dependence pattern)")
    p.add_argument("--targets", nargs="*", metavar="TARGET",
                   help="state classes to corrupt (default: reg cib "
                        "lsq mivt mem)")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "large"),
                   help="workload scale (default tiny)")
    p.add_argument("--config", default="io+x", choices=sorted(CONFIGS),
                   help="platform configuration (default io+x)")
    p.add_argument("--timeout", type=float, default=30.0, metavar="SEC",
                   help="per-injection wall-clock bound (default 30)")
    p.add_argument("--min-detection", type=float, default=0.0,
                   metavar="RATE",
                   help="exit nonzero if the detection rate of "
                        "monitor-visible faults falls below RATE "
                        "(e.g. 0.9)")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full report as JSON")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-injection progress dots")

    sub.add_parser("isa", help="print Table I")
    return parser


def cmd_compile(args):
    from .lang import compile_source
    with open(args.source) as f:
        source = f.read()
    compiled = compile_source(
        source, xloops=not args.gp, xi_enabled=not args.no_xi,
        schedule_cirs=args.schedule,
        annotate="auto" if args.auto_annotate else "pragma")
    for loop in compiled.loops:
        print("# line %d: %r -> %s%s" % (
            loop.line, loop.annotation, loop.mnemonic,
            "  cirs=" + ",".join(loop.cirs) if loop.cirs else ""),
            file=sys.stderr)
    print(compiled.asm_text)
    return 0


def cmd_disasm(args):
    from .isa import encode
    program = _load_program(args.source)
    for instr in program.instrs:
        label = program.label_at(instr.pc)
        if label:
            print("%s:" % label)
        print("    %08x:  %08x  %s"
              % (instr.pc, encode(instr), instr))
    return 0


def _load_program(path):
    with open(path) as f:
        source = f.read()
    if path.endswith(".s") or path.endswith(".asm"):
        from .asm import assemble
        return assemble(source)
    from .lang import compile_source
    return compile_source(source).program


def cmd_run(args):
    from .energy import system_energy
    from .lang import compile_source
    from .uarch import simulate
    with open(args.source) as f:
        source = f.read()
    compiled = compile_source(
        source, annotate="auto" if args.auto_annotate else "pragma")
    config = CONFIGS[args.config]
    if config.lpsu is None and args.mode != "traditional":
        print("error: config %r has no LPSU; use --mode traditional"
              % args.config, file=sys.stderr)
        return 2
    result = simulate(compiled.program, config, entry=args.entry,
                      args=args.args, mode=args.mode,
                      fast=False if args.no_fast else None,
                      backend=None if args.no_fast else args.backend,
                      approx=args.approx)
    print("cycles:        %d" % result.cycles)
    print("instructions:  %d gpp + %d lpsu"
          % (result.gpp_instrs, result.lpsu_instrs))
    print("energy:        %.1f nJ" % system_energy(result, config))
    print("return value:  %d" % result.return_value)
    if result.specialized_invocations:
        print("specialized:   %d invocation(s), %d iterations, "
              "%d squashes"
              % (result.specialized_invocations,
                 result.lpsu_stats.iterations,
                 result.lpsu_stats.squashes))
    return 0


def cmd_kernels(_args):
    from .kernels import ALL_KERNELS
    for spec in ALL_KERNELS:
        print("%-16s %-3s %-10s %s"
              % (spec.name, spec.suite, ",".join(spec.loop_types),
                 spec.description))
    return 0


def cmd_kernel(args):
    from .eval.runner import baseline_run, run
    _apply_fast_arg(args)
    result = run(args.name, args.config, mode=args.mode,
                 scale=args.scale, approx=args.approx,
                 backend="turbo" if args.approx and not args.backend
                 else args.backend)
    base = baseline_run(args.name, args.config, scale=args.scale)
    print("kernel:     %s on %s (%s)" % (args.name, args.config,
                                         args.mode))
    print("cycles:     %d (baseline GPP: %d)" % (result.cycles,
                                                 base.cycles))
    print("speedup:    %.2fx" % (base.cycles / result.cycles))
    print("energy:     %.1f nJ (baseline: %.1f nJ)"
          % (result.energy_nj, base.energy_nj))
    print("energy eff: %.2fx" % (base.energy_nj / result.energy_nj))
    if result.specialized_invocations:
        stats = result.lpsu_stats
        print("lpsu:       %d iterations, %d squashes, breakdown %s"
              % (stats.iterations, stats.squashes, stats.breakdown()))
    print("verified against the golden model: yes")
    if args.trace:
        from .kernels import get_kernel
        from .lang import compile_source
        from .sim import Memory
        from .uarch.tracelog import trace_specialized
        spec = get_kernel(args.name)
        compiled = compile_source(spec.source)
        workload = spec.workload(args.scale)
        mem = Memory()
        wargs = workload.apply(mem)
        config = CONFIGS[args.config]
        if config.lpsu is None:
            print("(no LPSU on %r; nothing to trace)" % args.config)
            return 0
        trace, _ = trace_specialized(
            compiled.program, spec.entry, wargs, mem,
            lpsu_config=config.lpsu, latencies=config.gpp.latencies)
        print()
        print(trace.render(width=args.trace_width))
    return 0


def cmd_table(args):
    from . import eval as ev
    from .eval import export
    _apply_cache_args(args)
    _apply_fast_arg(args)
    kw = {"scale": args.scale, "jobs": args.jobs}
    if args.kernels:
        kw["kernels"] = args.kernels
    payload = None
    if args.which == "table2":
        rows = ev.build_table2(**kw)
        print(ev.render_table2(rows))
        payload = export.table2_to_dict(rows)
    elif args.which == "table3":
        print(ev.render_table3())
        payload = ev.build_table3()
    elif args.which == "table4":
        rows = ev.build_table4(**kw)
        print(ev.render_table4(rows))
        payload = [{"kernel": r.kernel, "type": r.loop_type,
                    "speedups": r.speedups} for r in rows]
    elif args.which == "table5":
        rows = ev.build_table5()
        print(ev.render_table5(rows))
        payload = export.table5_to_dict(rows)
    elif args.which == "fig5":
        series = ev.fig5_data(**kw)
        print(ev.render_fig5(series))
        payload = export.series_to_dict(series)
    elif args.which == "fig6":
        data = ev.fig6_data(**kw)
        print(ev.render_fig6(data))
        payload = data
    elif args.which == "fig7":
        series = ev.fig7_data(**kw)
        print(ev.render_fig7(series))
        payload = export.series_to_dict(series)
    elif args.which == "fig9":
        series = ev.fig9_data(scale=args.scale, jobs=args.jobs)
        print(ev.render_fig9(series))
        payload = export.series_to_dict(series)
    elif args.which == "fig10":
        points = ev.fig10_data(**kw)
        print(ev.render_fig10(points))
        payload = export.fig8_to_dict(points)
    if args.json and payload is not None:
        export.save_json(args.json, payload)
        print("wrote %s" % args.json)
    return 0


def cmd_sweep(args):
    from .eval import parallel
    from .eval.figures import FIG9_KERNELS, FIG10_KERNELS
    _apply_cache_args(args)
    _apply_fast_arg(args)
    kernels = args.kernels or None
    scale, seed = args.scale, args.seed
    sets = {
        "table2": lambda: parallel.table2_points(kernels, scale, seed),
        "table4": lambda: parallel.table4_points(kernels, scale, seed),
        "fig5": lambda: parallel.fig5_points(kernels, scale, seed),
        "fig6": lambda: parallel.fig6_points(kernels, scale, seed),
        "fig7": lambda: parallel.fig7_points(kernels, scale, seed),
        "fig8": lambda: parallel.fig8_points(kernels, scale=scale,
                                             seed=seed),
        "fig9": lambda: parallel.fig9_points(kernels or FIG9_KERNELS,
                                             scale=scale, seed=seed),
        "fig10": lambda: parallel.fig10_points(
            kernels or FIG10_KERNELS, scale=scale, seed=seed),
    }
    if args.what == "all":
        points = [pt for make in sets.values() for pt in make()]
    else:
        points = sets[args.what]()
    if args.server:
        from .serve import ServeClient
        with ServeClient(args.server) as client:
            summary = client.submit(points)
    else:
        summary = parallel.sweep(points, jobs=args.jobs,
                                 timeout=args.timeout,
                                 retries=args.retries,
                                 checkpoint=args.checkpoint)
    print(summary.render(per_point=not args.quiet))
    ok = summary.ok
    if args.expect_served is not None:
        frac = summary.hits / max(1, summary.points)
        print("cache-served: %d/%d (%.1f%%, floor %.1f%%)"
              % (summary.hits, summary.points, 100 * frac,
                 100 * args.expect_served))
        if frac < args.expect_served or not summary.points:
            print("FAIL: served fraction %.3f below required %.3f"
                  % (frac, args.expect_served), file=sys.stderr)
            ok = False
    if args.expect_sims is not None and summary.misses > args.expect_sims:
        print("FAIL: %d simulator invocation(s), expected at most %d"
              % (summary.misses, args.expect_sims), file=sys.stderr)
        ok = False
    if args.expect_sims_exact is not None \
            and summary.misses != args.expect_sims_exact:
        print("FAIL: %d simulator invocation(s), expected exactly %d"
              % (summary.misses, args.expect_sims_exact),
              file=sys.stderr)
        ok = False
    if args.expect_points is not None \
            and summary.points != args.expect_points:
        print("FAIL: %d point(s) completed, expected exactly %d"
              % (summary.points, args.expect_points), file=sys.stderr)
        ok = False
    return 0 if ok else 1


def cmd_serve(args):
    import asyncio
    from .eval import diskcache
    from .serve import ServeClient, SweepServer
    from .serve.protocol import DEFAULT_PORT, ProtocolError, \
        parse_address
    if args.status:
        return _serve_status(args.status, as_json=args.json)
    if args.stop:
        try:
            # a draining distributed server replies only once its
            # queue is empty; wait at least the drain window
            with ServeClient(args.stop,
                             timeout=args.drain_timeout + 15.0) \
                    as client:
                reply = client.shutdown()
        except (OSError, ProtocolError) as exc:
            print("error: cannot reach server at %s: %s"
                  % (args.stop, exc), file=sys.stderr)
            return 1
        drained = reply.get("drained", True)
        print("stop sent to %s%s"
              % (args.stop,
                 "" if drained else " (drain timed out; unfinished "
                 "queue state is in the journal)"))
        return 0
    if args.cache_dir:
        diskcache.configure(cache_dir=args.cache_dir)
    if args.no_cache:
        diskcache.configure(enabled=False)
    path = host = port = None
    if args.socket and args.listen:
        print("error: --socket and --listen are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.socket:
        path = args.socket
    elif args.listen:
        text = args.listen if ":" in args.listen \
            else "127.0.0.1:" + args.listen
        try:
            _, host, port = parse_address(text)
        except ProtocolError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    else:
        host, port = "127.0.0.1", DEFAULT_PORT
    server = SweepServer(jobs=args.jobs, timeout=args.timeout,
                         retries=args.retries,
                         idle_exit=args.idle_exit,
                         distributed=args.distributed
                         or bool(args.journal),
                         journal=args.journal,
                         lease_ttl=args.lease_ttl,
                         requeue_budget=args.requeue_budget,
                         drain_timeout=args.drain_timeout)
    try:
        asyncio.run(server.serve(path=path, host=host, port=port,
                                 announce=print))
    except KeyboardInterrupt:
        pass
    c = server.counters
    print("served %d point(s) over %d connection(s): %d cache, "
          "%d in-flight joins, %d simulated, %d failed"
          % (c["points"], c["connections"], c["served_cache"],
             c["served_inflight"], c["simulated"], c["failed"]))
    if server.queue is not None:
        q = server.queue.counters
        print("queue: %d enqueued, %d completed, %d requeued, "
              "%d duplicate(s) discarded, %d expired lease(s), "
              "%d worker loss(es), %d budget-exhausted"
              % (q["enqueued"], q["completed"], q["requeued"],
                 q["duplicates"], q["expired_leases"],
                 q["worker_losses"], q["exhausted"]))
    return 0


def _serve_status(address, as_json=False):
    """One-shot ``repro serve --status ADDR``."""
    import json as json_mod
    from .serve import ServeClient
    from .serve.protocol import ProtocolError
    try:
        with ServeClient(address, timeout=10.0) as client:
            stats = client.stats()
    except (OSError, ProtocolError) as exc:
        print("error: cannot reach server at %s: %s" % (address, exc),
              file=sys.stderr)
        return 1
    if as_json:
        print(json_mod.dumps(stats, indent=2, sort_keys=True))
        return 0
    c = stats.get("counters", {})
    q = stats.get("queue") or {}
    qc = q.get("counters", {})
    print("server %s (protocol %s, jobs %s%s)"
          % (stats.get("version", "?"), stats.get("protocol", "?"),
             stats.get("jobs", "?"),
             ", distributed" if stats.get("distributed") else ""))
    print("  points: %d total -- %d cache-served, %d in-flight "
          "joins, %d simulated, %d failed"
          % (c.get("points", 0), c.get("served_cache", 0),
             c.get("served_inflight", 0), c.get("simulated", 0),
             c.get("failed", 0)))
    print("  inflight: %d   connections: %d   submissions: %d"
          % (stats.get("inflight", 0), c.get("connections", 0),
             c.get("submissions", 0)))
    if stats.get("distributed"):
        print("  queue: %d queued, %d leased, %d worker(s); "
              "%d completed, %d requeued, %d duplicate(s)"
              % (q.get("queued", 0), q.get("leased", 0),
                 q.get("workers", 0), qc.get("completed", 0),
                 qc.get("requeued", 0), qc.get("duplicates", 0)))
    return 0


def cmd_worker(args):
    from .eval import diskcache
    from .serve.protocol import ProtocolError
    from .serve.worker import run_worker
    _apply_fast_arg(args)
    if args.cache_dir:
        diskcache.configure(cache_dir=args.cache_dir)
    if args.no_cache:
        diskcache.configure(enabled=False)
    try:
        counters = run_worker(args.connect, jobs=args.jobs,
                              name=args.name, timeout=args.timeout,
                              retries=args.retries, poll=args.poll,
                              announce=print)
    except (OSError, ProtocolError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print("worker done: %d lease(s), %d point(s), %d completed, "
          "%d failed, %d reconnect(s)"
          % (counters["leases"], counters["points"],
             counters["completed"], counters["failed"],
             counters["reconnects"]))
    return 0


def cmd_verify(args):
    from .verify import run_conformance, run_fast_slow, run_ladder
    kernels = args.kernels or None
    if args.all:
        kernels = None

    def progress(res):
        if res.ok and (args.fast_slow or args.ladder):
            print("ok   %-16s %-14s %3d points bit-identical"
                  % (res.name, ",".join(res.kinds), res.configs))
        elif res.ok:
            print("ok   %-16s %-14s %3d configs  %5d iterations  "
                  "%4d squashes"
                  % (res.name, ",".join(res.kinds), res.configs,
                     res.iterations, res.squashes))
        else:
            print("FAIL %-16s %s" % (res.name, res.detail))

    harness = (run_ladder if args.ladder
               else run_fast_slow if args.fast_slow
               else run_conformance)
    results = harness(kernels=kernels, gen=args.gen,
                      seed=args.seed, scale=args.scale,
                      progress=progress)
    bad = [r for r in results if not r.ok]
    print("%d loop%s checked, %d failed"
          % (len(results), "s" if len(results) != 1 else "", len(bad)))
    return 1 if bad else 0


def cmd_prove(args):
    from .lang.passes.prover import fuzz_prover, prove_all
    names = args.kernels or None
    if args.all:
        names = None

    def progress(kp):
        flag = ("ok*  " if kp.whitelisted else "ok   " if kp.ok
                else "FAIL ")
        print("%s%-16s %s" % (flag, kp.name, kp.detail))
        for proof in kp.loops:
            if args.verbose:
                print("      %s" % proof.describe())
                for line in proof.describe_pairs().splitlines():
                    print("        %s" % line)
            elif proof.counterexample is not None and not proof.ok:
                print("      counterexample: %s" % proof.counterexample)

    results = prove_all(names, progress=progress)
    bad = [kp for kp in results if not kp.ok]
    whitelisted = [kp for kp in results if kp.whitelisted]

    replay_bad = 0
    if args.replay:
        from .kernels import get_kernel
        from .lang.parser import parse
        from .verify.conformance import check_counterexample
        for kp in results:
            spec = get_kernel(kp.name)
            funcs = {f.name: f for f in parse(spec.source).functions}
            for proof in kp.loops:
                if proof.counterexample is None:
                    continue
                func = funcs.get(proof.function)
                if func is None or func.name != spec.entry:
                    continue
                res = check_counterexample(spec.source, spec.entry,
                                           func.params, proof)
                caught = not res.ok
                replay_bad += 0 if caught else 1
                print("%s %-16s counterexample replay %s"
                      % ("ok  " if caught else "FAIL", kp.name,
                         "diverged as predicted" if caught
                         else "produced no divergence"))

    if args.json:
        import json
        records = [{
            "name": kp.name, "ok": kp.ok,
            "whitelisted": kp.whitelisted, "detail": kp.detail,
            "loops": [{
                "function": p.function, "line": p.line,
                "annotation": p.annotation, "emitted": p.emitted,
                "verdict": p.verdict, "minimal": p.minimal,
                "mem_status": p.mem_status,
                "reasons": list(p.reasons), "notes": list(p.notes),
                "counterexample": (None if p.counterexample is None
                                   else str(p.counterexample)),
            } for p in kp.loops],
        } for kp in results]
        with open(args.json, "w") as f:
            json.dump(records, f, indent=2)

    fuzz_bad = 0
    if args.fuzz:
        def fuzz_progress(case, verdict):
            if (case + 1) % 25 == 0 or case + 1 == args.fuzz:
                print("fuzz %d/%d" % (case + 1, args.fuzz))
        failures = fuzz_prover(seed=args.seed, count=args.fuzz,
                               progress=fuzz_progress)
        for f in failures:
            print("FUZZ FAIL %s" % f)
        fuzz_bad = len(failures)

    print("%d kernel%s proved, %d failed, %d whitelisted"
          % (len(results), "s" if len(results) != 1 else "",
             len(bad), len(whitelisted)))
    return 1 if (bad or fuzz_bad or replay_bad) else 0


def cmd_profile(args):
    import cProfile
    import pstats
    from .eval import runner
    _apply_fast_arg(args)
    # a memo- or disk-served result would profile the cache instead of
    # the simulator: drop in-process memos and bypass the disk cache
    runner.clear_cache(keep_disk=True)
    from .sim.backends import resolve_backend
    backend = resolve_backend(
        "interp" if getattr(args, "no_fast", False)
        else args.backend or runner.default_backend())
    prof = cProfile.Profile()
    prof.enable()
    result = runner.run(args.name, args.config, mode=args.mode,
                        scale=args.scale, use_disk_cache=False,
                        backend=backend.name)
    prof.disable()
    print("kernel:  %s on %s (%s, scale=%s, backend=%s)"
          % (args.name, args.config, args.mode, args.scale,
             backend.name))
    print("cycles:  %d" % result.cycles)
    if result.backend_stats:
        print("backend: %s" % "  ".join(
            "%s=%d" % kv for kv in sorted(result.backend_stats.items())))
    print()
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _parse_size(text):
    """``256M``/``2G``/``4096`` -> bytes (suffixes K/M/G, powers of
    1024)."""
    s = text.strip().upper()
    factor = 1
    for suffix, mult in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if s.endswith(suffix):
            s = s[:-1]
            factor = mult
            break
    return int(float(s) * factor)


def _fmt_size(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return ("%d %s" % (n, unit) if unit == "B"
                    else "%.1f %s" % (n, unit))
        n /= 1024.0


def cmd_cache(args):
    from .eval import diskcache
    if args.cache_dir:
        diskcache.configure(cache_dir=args.cache_dir)
    if args.action == "stats":
        st = diskcache.disk_stats()
        if args.json:
            import json
            st["shard_distribution"] = diskcache.shard_stats()
            print(json.dumps(st, indent=2, sort_keys=True))
            return 0
        print("cache dir: %s" % st["dir"])
        print("records:   %d" % st["records"])
        print("size:      %s" % _fmt_size(st["bytes"]))
        print("shards:    %d populated (index rebuilds this "
              "process: %d)" % (st["shards"], st["index_rebuilds"]))
        hot = st["hot"]
        print("hot tier:  %d record(s), %s of %s  "
              "(%d hit(s), %d eviction(s))"
              % (hot["entries"], _fmt_size(hot["bytes"]),
                 _fmt_size(hot["limit_bytes"]), hot["hits"],
                 hot["evictions"]))
        return 0
    if args.action == "clear":
        removed = diskcache.clear()
        print("removed %d record(s)" % removed)
        return 0
    if args.action == "fsck":
        report = diskcache.fsck()
        print("cache dir: %s" % report["dir"])
        print("checked:   %d record(s)" % report["checked"])
        print("ok:        %d (%d legacy un-checksummed)"
              % (report["ok"], report["legacy"]))
        print("corrupt:   %d (quarantined)" % report["corrupt"])
        for path in report["quarantined"]:
            print("  -> %s" % path)
        print("stale tmp: %d removed" % report["stale_tmp"])
        return 1 if report["corrupt"] else 0
    # prune
    if not args.max_size:
        print("error: prune requires --max-size (e.g. --max-size 256M)",
              file=sys.stderr)
        return 2
    try:
        budget = _parse_size(args.max_size)
    except ValueError:
        print("error: unparseable --max-size %r" % args.max_size,
              file=sys.stderr)
        return 2
    removed, freed = diskcache.prune(budget)
    st = diskcache.disk_stats()
    print("removed %d record(s), freed %s; now %d record(s), %s"
          % (removed, _fmt_size(freed), st["records"],
             _fmt_size(st["bytes"])))
    return 0


def cmd_inject(args):
    from .resilience import (CampaignConfig, CampaignError,
                             FAULT_TARGETS, run_campaign)
    kw = {}
    if args.kernels:
        kw["kernels"] = tuple(args.kernels)
    if args.targets:
        unknown = set(args.targets) - set(FAULT_TARGETS)
        if unknown:
            print("error: unknown fault target(s) %s (choose from %s)"
                  % (", ".join(sorted(unknown)),
                     " ".join(FAULT_TARGETS)), file=sys.stderr)
            return 2
        kw["targets"] = tuple(args.targets)
    cfg = CampaignConfig(config=args.config, scale=args.scale,
                         seed=args.seed, count=args.count,
                         timeout=args.timeout, **kw)

    def progress(done, total, outcome):
        if args.quiet:
            return
        sys.stdout.write(".")
        if done % 50 == 0 or done == total:
            sys.stdout.write(" %d/%d\n" % (done, total))
        sys.stdout.flush()

    try:
        report = run_campaign(cfg, progress=progress)
    except CampaignError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(report.render())
    if args.json:
        import json
        with open(args.json, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
        print("wrote %s" % args.json)
    if args.min_detection and report.detection_rate < args.min_detection:
        print("FAIL: detection rate %.3f below required %.3f"
              % (report.detection_rate, args.min_detection),
              file=sys.stderr)
        return 1
    return 0


def cmd_isa(_args):
    from .isa import PATTERN_DESCRIPTIONS
    print("XLOOPS instruction-set extensions (paper Table I + the .de "
          "extension):")
    for mnemonic, description in PATTERN_DESCRIPTIONS.items():
        print("  %-14s %s" % (mnemonic, description))
    print("  %-14s %s" % ("addiu.xi",
                          "cross-iteration add (immediate stride)"))
    print("  %-14s %s" % ("addu.xi",
                          "cross-iteration add (register stride)"))
    print("  %-14s %s" % ("xloop.break",
                          "data-dependent exit (.de bodies only)"))
    return 0


_COMMANDS = {
    "compile": cmd_compile, "disasm": cmd_disasm, "run": cmd_run,
    "kernels": cmd_kernels, "kernel": cmd_kernel, "table": cmd_table,
    "sweep": cmd_sweep, "serve": cmd_serve, "worker": cmd_worker,
    "verify": cmd_verify,
    "prove": cmd_prove, "isa": cmd_isa,
    "cache": cmd_cache, "profile": cmd_profile, "inject": cmd_inject,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
