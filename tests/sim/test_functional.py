import pytest

from repro.asm import assemble
from repro.sim import (FunctionalCore, HALT_PC, Memory, SimError,
                       f32_to_bits, run_program, to_s32, to_u32)


def run_asm(src, entry="main", args=(), mem=None):
    return run_program(assemble(src), entry, args, mem=mem)


def test_arithmetic_basics():
    core = run_asm("""
    main:
        li   a0, 21
        add  a0, a0, a0    # 42
        li   t0, 2
        sub  a0, a0, t0    # 40
        ret
    """)
    assert core.return_value == 40


def test_signed_unsigned_compares():
    core = run_asm("""
    main:
        li   t0, -1
        li   t1, 1
        slt  a0, t0, t1     # 1 (signed)
        sltu a1, t0, t1     # 0 (unsigned: 0xffffffff > 1)
        slti a2, t0, 0      # 1
        sltiu a3, t1, 2     # 1
        ret
    """)
    assert core.regs[10] == 1
    assert core.regs[11] == 0
    assert core.regs[12] == 1
    assert core.regs[13] == 1


def test_shifts():
    core = run_asm("""
    main:
        li   t0, -8
        srai a0, t0, 1      # -4 arithmetic
        srli a1, t0, 28     # logical
        li   t1, 3
        sll  a2, t1, t1     # 24
        ret
    """)
    assert to_s32(core.regs[10]) == -4
    assert core.regs[11] == 0xF
    assert core.regs[12] == 24


def test_mul_div_rem_signs():
    core = run_asm("""
    main:
        li  t0, -7
        li  t1, 2
        mul a0, t0, t1      # -14
        div a1, t0, t1      # -3 (trunc toward zero)
        rem a2, t0, t1      # -1
        li  t2, 0
        div a3, t0, t2      # div-by-zero -> all ones
        ret
    """)
    assert to_s32(core.regs[10]) == -14
    assert to_s32(core.regs[11]) == -3
    assert to_s32(core.regs[12]) == -1
    assert core.regs[13] == 0xFFFFFFFF


def test_mulh():
    core = run_asm("""
    main:
        li  t0, 0x10000
        li  t1, 0x10000
        mulh a0, t0, t1     # (2^16 * 2^16) >> 32 == 1... actually 2^32>>32 = 1
        ret
    """)
    assert core.regs[10] == 1


def test_float_ops():
    core = run_asm("""
    main:
        la   t0, vals
        lw   t1, 0(t0)       # 1.5f bits
        lw   t2, 4(t0)       # 2.5f bits
        fadd.s a0, t1, t2
        fmul.s a1, t1, t2
        flt.s  a2, t1, t2    # 1
        fle.s  a3, t2, t1    # 0
        li     t3, 9
        fcvt.s.w a4, t3
        fsqrt.s  a5, a4
        fcvt.w.s a6, a5      # 3
        ret
        .data
    vals: .float 1.5, 2.5
    """)
    assert core.regs[10] == f32_to_bits(4.0)
    assert core.regs[11] == f32_to_bits(3.75)
    assert core.regs[12] == 1
    assert core.regs[13] == 0
    assert core.regs[16] == 3


def test_loads_stores_all_widths():
    core = run_asm("""
    main:
        la  t0, buf
        li  t1, -2
        sw  t1, 0(t0)
        lb  a0, 0(t0)        # 0xfe -> -2
        lbu a1, 0(t0)        # 254
        lh  a2, 0(t0)        # -2
        lhu a3, 0(t0)        # 0xfffe
        sb  zero, 0(t0)
        lw  a4, 0(t0)        # 0xffffff00
        ret
        .data
    buf: .space 8
    """)
    assert to_s32(core.regs[10]) == -2
    assert core.regs[11] == 254
    assert to_s32(core.regs[12]) == -2
    assert core.regs[13] == 0xFFFE
    assert core.regs[14] == 0xFFFFFF00


def test_amo_returns_old_value():
    core = run_asm("""
    main:
        la  t0, cell
        li  t1, 5
        amo.add a0, t1, (t0)   # old = 10
        lw  a1, 0(t0)          # 15
        ret
        .data
    cell: .word 10
    """)
    assert core.regs[10] == 10
    assert core.regs[11] == 15


def test_branches_and_loop():
    core = run_asm("""
    main:                      # sum 1..a0
        li  t0, 0
        li  t1, 1
    loop:
        add t0, t0, t1
        addi t1, t1, 1
        ble t1, a0, loop
        mv  a0, t0
        ret
    """, args=[5])
    assert core.return_value == 15


def test_jal_jalr_call_chain():
    core = run_asm("""
    main:
        mv  s0, ra
        li  a0, 5
        call double
        call double
        mv  ra, s0
        ret
    double:
        add a0, a0, a0
        ret
    """)
    assert core.return_value == 20


def test_x0_is_hardwired_zero():
    core = run_asm("""
    main:
        li   t0, 99
        add  zero, t0, t0
        mv   a0, zero
        ret
    """)
    assert core.return_value == 0


def test_xloop_traditional_is_conditional_branch():
    # xloop.uc behaves exactly like a backward blt on a GPP (paper II-C)
    core = run_asm("""
    main:                       # a0 = n; writes i*2 to out[i]
        li   t0, 0
        la   t1, out
    body:
        slli t2, t0, 1
        slli t3, t0, 2
        add  t3, t3, t1
        sw   t2, 0(t3)
        addi t0, t0, 1
        xloop.uc t0, a0, body
        ret
        .data
    out: .space 64
    """, args=[8])
    out = core.mem.read_words(core.program.symbols["out"], 8)
    assert out == [0, 2, 4, 6, 8, 10, 12, 14]


def test_xi_traditional_is_plain_add():
    core = run_asm("""
    main:
        li   t0, 100
        addiu.xi t0, t0, 5
        li   t1, 7
        addu.xi  t0, t0, t1
        mv   a0, t0
        ret
    """)
    assert core.return_value == 112


def test_zero_trip_xloop_body_runs_once_traditionally():
    # The compiler always guards xloops with a zero-trip check; at the
    # ISA level the body executes at least once before the xloop test,
    # matching a do-while rotation.
    core = run_asm("""
    main:
        li   t0, 0
        li   t1, 0
    body:
        addi t1, t1, 1
        addi t0, t0, 1
        xloop.uc t0, zero, body
        mv   a0, t1
        ret
    """)
    assert core.return_value == 1


def test_halt_and_icount():
    core = run_asm("main:\n ret\n")
    assert core.halted
    assert core.icount == 1
    with pytest.raises(SimError):
        core.step()


def test_livelock_guard():
    prog = assemble("main:\n j main\n")
    core = FunctionalCore(prog)
    core.setup_call("main")
    with pytest.raises(SimError):
        core.run(max_steps=100)


def test_bad_fetch_raises():
    prog = assemble("main:\n ret\n")
    core = FunctionalCore(prog)
    core.pc = 0xDEAD0
    with pytest.raises(IndexError):
        core.step()


def test_args_land_in_a_registers():
    core = run_asm("""
    main:
        add a0, a0, a1
        add a0, a0, a2
        ret
    """, args=[1, 2, 3])
    assert core.return_value == 6


def test_too_many_args_rejected():
    prog = assemble("main:\n ret\n")
    with pytest.raises(SimError):
        FunctionalCore(prog).setup_call("main", list(range(9)))


def test_fence_is_a_nop_functionally():
    core = run_asm("main:\n fence\n li a0, 1\n ret\n")
    assert core.return_value == 1


def test_shared_memory_between_runs():
    mem = Memory()
    run_asm("""
    main:
        la t0, cell
        li t1, 123
        sw t1, 0(t0)
        ret
        .data
    cell: .word 0
    """, mem=mem)
    # second program, same memory: data section re-load overwrites, so
    # check the write landed where expected before reuse
    from repro.asm.program import DATA_BASE
    assert mem.load_word(DATA_BASE) == 123
