"""MiniC -> XLOOPS assembly code generation.

One :class:`FuncCodegen` per function emits virtual-register assembly
(:mod:`repro.lang.vasm`), runs linear-scan allocation
(:mod:`repro.lang.regalloc`), and renders final assembly text.

XLOOPS specifics (paper Sections II-A/II-B):

* annotated loops are rotated into the guard + do-while shape the
  ``xloop`` instruction expects (body label precedes the xloop, which
  acts as the backward conditional branch on traditional execution);
* loop strength reduction turns affine array addressing into induction
  pointers, bumped with ``addiu.xi``/``addu.xi`` inside xloop bodies
  (the MIV encoding) and plain adds elsewhere; disabling ``xi``
  (``CodegenOptions.xi_enabled=False``, as in the paper's RTL
  evaluation) recomputes addresses from the index instead, at the cost
  of extra dynamic instructions;
* when ``CodegenOptions.xloops=False`` the same source compiles to a
  pure general-purpose binary (pragmas ignored, backward ``blt``
  instead of ``xloop``), which is the paper's GP-ISA baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.memory import f32_to_bits
from .ast_nodes import (AddrOf, Assign, Binary, Break, Call, Cast, CHAR,
                        Continue, Decl, Expr, ExprStmt, FLOAT, FloatLit,
                        For, Function, If, Index, INT, IntLit, Return,
                        Stmt, Unary, Unit, Var, VOID, While, walk_exprs)
from .lexer import CompileError
from .passes.depend import LinForm, decompose, _BodyScan, _canonical_loop
from .regalloc import allocate
from .sema import AMO_BUILTINS, FLOAT_BUILTINS, Symbol
from .vasm import RA, SP, VInstr, ZERO, preg, vreg

IMM12_MIN, IMM12_MAX = -2048, 2047

_INT_CMP = {"<", ">", "<=", ">=", "==", "!="}
_SWAPPED = {">": "<", "<=": ">="}


@dataclass
class CodegenOptions:
    """Knobs for the experiments."""

    xloops: bool = True        # False -> GP-ISA baseline binary
    xi_enabled: bool = True    # False -> no MIV encoding (Section V)
    sr_enabled: bool = True    # loop strength reduction on/off
    max_mivs: int = 6          # MIVT budget per loop
    # automatic CIR-critical-path scheduling (Section IV-G automated;
    # off by default to keep the paper's compiler baseline)
    schedule_cirs: bool = False


@dataclass
class _SRGroup:
    """One strength-reduced induction pointer."""

    ptr: Tuple                 # pointer vreg
    bump_imm: Optional[int]    # constant byte stride, or None
    bump_reg: Optional[Tuple]  # register byte stride (addu.xi), or None


class FuncCodegen:
    def __init__(self, func, unit, options):
        self.func = func
        self.unit = unit
        self.opts = options
        self.instrs: List[VInstr] = []
        self._nv = 0
        self._nlabel = 0
        self.sym_reg: Dict[Symbol, Tuple] = {}
        self.array_offset: Dict[Symbol, int] = {}
        self.array_bytes = 0
        self.call_positions: List[int] = []
        self.loop_regions: List[Tuple[int, int]] = []
        self.xloop_regions: List[Tuple[int, int]] = []
        self.xloop_cir_vregs: List[frozenset] = []
        self.loop_stack: List[Tuple[Optional[str], str]] = []
        self.sr_map: Dict[int, _SRGroup] = {}
        self.float_reg: Dict[int, Tuple] = {}
        self.float_labels: Dict[int, str] = {}
        self.has_calls = False

    # -- low-level helpers --------------------------------------------------

    def v(self):
        self._nv += 1
        return vreg(self._nv - 1)

    def label(self, hint):
        self._nlabel += 1
        return "%s__%s%d" % (self.func.name, hint, self._nlabel - 1)

    def emit(self, mn, **kw):
        ins = VInstr(mn, **kw)
        self.instrs.append(ins)
        return ins

    def emit_label(self, name):
        self.instrs.append(VInstr(name, is_label=True))

    def li(self, value, dst=None):
        dst = dst or self.v()
        self.emit("li", rd=dst, imm=value)
        return dst

    # -- entry ------------------------------------------------------------------

    def run(self):
        func = self.func
        # parameters: move out of the ABI registers immediately
        for k, p in enumerate(func.params):
            sym = self._param_symbol(p.name)
            reg = self.v()
            self.sym_reg[sym] = reg
            self.emit("mv", rd=reg, rs1=preg(10 + k),
                      comment="param %s" % p.name)
        # local arrays: frame offsets (assigned as declarations appear)
        self._assign_array_offsets(func.body)
        # float constants: materialized once at entry (must dominate uses)
        self._materialize_floats()
        self._epilogue_label = self.label("epilogue")
        self.return_positions = []
        self.gen_stmts(func.body)
        if self.opts.schedule_cirs and any(self.xloop_cir_vregs):
            self._apply_cir_scheduling()
        result = allocate(
            self.instrs, call_positions=self.call_positions,
            loop_regions=self.loop_regions,
            xloop_regions=self.xloop_regions,
            spill_base=self.array_bytes,
            num_params=len(func.params),
            return_positions=self.return_positions)
        return self._render(result)

    def _param_symbol(self, name):
        for sym in self._sema_symbols():
            if sym.name == name and sym.is_param:
                return sym
        raise CompileError("internal: unresolved parameter %r" % name)

    def _sema_symbols(self):
        from .sema import Sema  # annotated by the driver
        return self.func._symbols

    def _assign_array_offsets(self, stmts):
        from .ast_nodes import walk_stmts
        for stmt in walk_stmts(stmts):
            if isinstance(stmt, Decl) and stmt.array_size is not None:
                size = stmt.array_size * (1 if stmt.type.base == "char"
                                          else 4)
                size = (size + 3) & ~3
                self.array_offset[stmt.symbol] = self.array_bytes
                self.array_bytes += size

    #: materializable-by-li range (lui+addi pair)
    LI_MIN, LI_MAX = -(1 << 28), (1 << 28) - 1

    def _materialize_floats(self):
        """Materialize float literals and out-of-li-range integer
        literals once at function entry via a per-function constant
        pool (defs must dominate every use)."""
        consts = []
        from .ast_nodes import walk_stmts, stmt_exprs
        for stmt in walk_stmts(self.func.body):
            for top in stmt_exprs(stmt):
                for node in walk_exprs(top):
                    if isinstance(node, FloatLit):
                        bits = f32_to_bits(node.value)
                        if bits not in self.float_reg and bits != 0:
                            consts.append((bits, node.value))
                            self.float_reg[bits] = None
                    elif isinstance(node, IntLit) and not (
                            self.LI_MIN <= node.value <= self.LI_MAX):
                        bits = node.value & 0xFFFFFFFF
                        if bits not in self.float_reg:
                            consts.append((bits, node.value))
                            self.float_reg[bits] = None
        for bits, value in consts:
            label = "%s__fc%d" % (self.func.name, len(self.float_labels))
            self.float_labels[bits] = label
            addr = self.v()
            reg = self.v()
            self.emit("la", rd=addr, label=label,
                      comment="const %r" % value)
            self.emit("lw", rd=reg, rs1=addr, imm=0)
            self.float_reg[bits] = reg

    # -- statements ------------------------------------------------------------

    def gen_stmts(self, stmts):
        for stmt in stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt):
        if isinstance(stmt, Decl):
            self.gen_decl(stmt)
        elif isinstance(stmt, Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, If):
            self.gen_if(stmt)
        elif isinstance(stmt, While):
            self.gen_while(stmt)
        elif isinstance(stmt, For):
            self.gen_for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                val = self.gen_expr(stmt.value)
                self.return_positions.append(len(self.instrs))
                self.emit("mv", rd=preg(10), rs1=val)
            self.emit("jal", rd=ZERO, label=self._epilogue_label)
        elif isinstance(stmt, Break):
            if not self.loop_stack:
                raise CompileError("break outside a loop", stmt.line)
            brk, _cont, is_xloop = self.loop_stack[-1]
            if is_xloop and self.opts.xloops:
                # data-dependent exit: xloop.break targets the xloop
                # fall-through (validated by the LMU scan)
                self.emit("xloop.break", rd=ZERO, label=brk)
            else:
                self.emit("jal", rd=ZERO, label=brk)
        elif isinstance(stmt, Continue):
            if not self.loop_stack:
                raise CompileError("continue outside a loop", stmt.line)
            self.emit("jal", rd=ZERO, label=self.loop_stack[-1][1])
        else:  # pragma: no cover
            raise CompileError("cannot generate %r" % stmt, stmt.line)

    def gen_decl(self, stmt):
        sym = stmt.symbol
        if sym.is_array:
            return  # frame space already reserved
        reg = self.v()
        self.sym_reg[sym] = reg
        if stmt.init is not None:
            self.gen_expr(stmt.init, dst=reg)
        else:
            self.emit("mv", rd=reg, rs1=ZERO)

    def gen_assign(self, stmt):
        target = stmt.target
        if isinstance(target, Var):
            self.gen_expr(stmt.value, dst=self.sym_reg[target.symbol])
            return
        # store to memory
        value = self.gen_expr(stmt.value)
        base, offset = self.gen_address(target)
        elem = target.base.type.deref()
        self.emit("sb" if elem == CHAR else "sw",
                  rs1=base, rs2=value, imm=offset)

    def gen_if(self, stmt):
        if stmt.orelse:
            Lelse, Lend = self.label("else"), self.label("endif")
            self.gen_branch(stmt.cond, Lelse, invert=True)
            self.gen_stmts(stmt.then)
            self.emit("jal", rd=ZERO, label=Lend)
            self.emit_label(Lelse)
            self.gen_stmts(stmt.orelse)
            self.emit_label(Lend)
        else:
            Lend = self.label("endif")
            self.gen_branch(stmt.cond, Lend, invert=True)
            self.gen_stmts(stmt.then)
            self.emit_label(Lend)

    def gen_while(self, stmt):
        Lhead, Lend = self.label("while"), self.label("endwhile")
        start = len(self.instrs)
        self.emit_label(Lhead)
        self.gen_branch(stmt.cond, Lend, invert=True)
        self.loop_stack.append((Lend, Lhead, False))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        self.emit("jal", rd=ZERO, label=Lhead)
        self.emit_label(Lend)
        self.loop_regions.append((start, len(self.instrs) - 1))

    # -- loops --------------------------------------------------------------------

    def gen_for(self, stmt):
        if stmt.annotation and stmt.xloop is not None:
            self._gen_xloop_for(stmt)
        else:
            self._gen_plain_for(stmt)

    def _gen_plain_for(self, stmt):
        Lbody = self.label("for")
        Lcont = self.label("forcont")
        Lend = self.label("endfor")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        if stmt.cond is not None:
            self.gen_branch(stmt.cond, Lend, invert=True)
        groups = self._plan_strength_reduction(stmt, enabled=True)
        # the loop region starts at the body label: guard and
        # strength-reduction preheader definitions stay *outside* so
        # the loop-carried liveness extension covers them
        start = len(self.instrs)
        self.emit_label(Lbody)
        self.loop_stack.append((Lend, Lcont, False))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        self.emit_label(Lcont)
        self._emit_sr_bumps(groups, xi=False)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        if stmt.cond is not None:
            self.gen_branch(stmt.cond, Lbody)
        else:
            self.emit("jal", rd=ZERO, label=Lbody)
        self.emit_label(Lend)
        self.loop_regions.append((start, len(self.instrs) - 1))
        self._release_sr(groups)

    def _gen_xloop_for(self, stmt):
        opts = self.opts
        kind = stmt.xloop
        ivar = stmt.induction
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        ireg = self.sym_reg[ivar]
        bound = stmt.cond.right
        if isinstance(bound, Var) and bound.symbol.in_register:
            breg = self.sym_reg[bound.symbol]
        else:
            breg = self.gen_expr(bound)
        Lbody = self.label("xbody")
        Lcont = self.label("xcont")
        Lend = self.label("xend")
        # zero-trip guard (the xloop tests at the bottom)
        self.emit("bge", rs1=ireg, rs2=breg, label=Lend)
        # SR in an xloop body needs the xi encoding (a plain-add
        # induction pointer would be a cross-iteration register); the
        # GP-ISA baseline strength-reduces with plain adds as usual.
        use_xi = opts.xloops and opts.xi_enabled
        groups = self._plan_strength_reduction(
            stmt, enabled=(use_xi or not opts.xloops))
        body_start = len(self.instrs)
        start = body_start
        self.emit_label(Lbody)
        self.loop_stack.append((Lend, Lcont, True))
        body_stmts = stmt.body
        if (opts.schedule_cirs and opts.xloops
                and getattr(stmt, "cir_symbols", ())):
            from .passes.schedule import reorder_loop_statements
            body_stmts = reorder_loop_statements(
                stmt.body, stmt.cir_symbols)
        self.gen_stmts(body_stmts)
        self.loop_stack.pop()
        self.emit_label(Lcont)
        self._emit_sr_bumps(groups, xi=use_xi)
        self.emit("addi", rd=ireg, rs1=ireg, imm=1)
        if opts.xloops:
            self.emit(kind.mnemonic, rs1=ireg, rs2=breg, label=Lbody,
                      comment="cirs=%s" % (",".join(stmt.cir_names) or "-"))
            self.xloop_regions.append((body_start, len(self.instrs) - 1))
            self.xloop_cir_vregs.append(frozenset(
                self.sym_reg[sym]
                for sym in getattr(stmt, "cir_symbols", ())
                if sym in self.sym_reg))
        else:
            self.emit("blt", rs1=ireg, rs2=breg, label=Lbody)
        self.emit_label(Lend)
        self.loop_regions.append((start, len(self.instrs) - 1))
        self._release_sr(groups)

    def _apply_cir_scheduling(self):
        """Run the Section IV-G list scheduler over every xloop body
        that carries CIRs, then refresh positional metadata."""
        from .passes.schedule import schedule_xloop_bodies
        self.instrs = schedule_xloop_bodies(
            self.instrs, self.xloop_regions, self.xloop_cir_vregs)
        self.call_positions = [
            i for i, ins in enumerate(self.instrs)
            if ins.mn == "jal" and ins.rd == RA]
        self.return_positions = [
            i for i, ins in enumerate(self.instrs)
            if ins.mn == "mv" and ins.rd == preg(10)]

    # -- strength reduction (MIVs) ----------------------------------------------

    def _plan_strength_reduction(self, stmt, enabled):
        self._sr_claims = getattr(self, "_sr_claims", [])
        if not enabled or not self.opts.sr_enabled:
            self._sr_claims.append([])
            return []
        try:
            ivar, _bound = _canonical_loop(stmt)
        except CompileError:
            self._sr_claims.append([])
            return []
        scan = _BodyScan(ivar)
        scan.scan(stmt.body)
        groups: Dict[Tuple, _SRGroup] = {}
        claimed: List[Tuple[int, Tuple]] = []
        for node in self._body_index_nodes(stmt.body):
            if id(node) in self.sr_map:
                continue   # claimed by an enclosing loop
            base = node.base
            if not isinstance(base, Var) or base.symbol in scan.written:
                continue
            form = decompose(node.subscript, ivar, scan.written)
            if (not form.affine or form.variant or form.coef == 0):
                continue
            elem = base.type.deref() if base.type.is_pointer else None
            if elem is None:
                continue
            elem_size = 1 if elem == CHAR else 4
            if isinstance(form.coef, int):
                stride = form.coef * elem_size
                if not IMM12_MIN <= stride <= IMM12_MAX:
                    continue
                key = (base.symbol.sid, form.coef, form.syms, form.const)
            else:
                key = (base.symbol.sid, form.coef, form.syms, form.const)
            if key not in groups:
                if len(groups) >= self.opts.max_mivs:
                    continue
                groups[key] = self._make_sr_group(node, form, elem_size)
            claimed.append((id(node), key))
        for node_id, key in claimed:
            self.sr_map[node_id] = groups[key]
        self._sr_claims.append([nid for nid, _ in claimed])
        return list(groups.values())

    def _make_sr_group(self, node, form, elem_size):
        # preheader: ptr = base + subscript(i0)*elem
        base_reg = self.gen_expr(node.base)
        sub = self.gen_expr(node.subscript)
        ptr = self.v()
        if elem_size == 4:
            scaled = self.v()
            self.emit("slli", rd=scaled, rs1=sub, imm=2)
            sub = scaled
        self.emit("add", rd=ptr, rs1=base_reg, rs2=sub)
        if isinstance(form.coef, int):
            return _SRGroup(ptr=ptr, bump_imm=form.coef * elem_size,
                            bump_reg=None)
        stride = self.gen_expr(form.coef_expr)
        if elem_size == 4:
            scaled = self.v()
            self.emit("slli", rd=scaled, rs1=stride, imm=2)
            stride = scaled
        return _SRGroup(ptr=ptr, bump_imm=None, bump_reg=stride)

    def _emit_sr_bumps(self, groups, xi):
        for g in groups:
            if g.bump_imm is not None:
                self.emit("addiu.xi" if xi else "addi",
                          rd=g.ptr, rs1=g.ptr, imm=g.bump_imm)
            else:
                self.emit("addu.xi" if xi else "add",
                          rd=g.ptr, rs1=g.ptr, rs2=g.bump_reg)

    def _release_sr(self, groups):
        for nid in self._sr_claims.pop():
            self.sr_map.pop(nid, None)

    def _body_index_nodes(self, stmts):
        from .ast_nodes import walk_stmts, stmt_exprs
        for stmt in walk_stmts(stmts):
            for top in stmt_exprs(stmt):
                for node in walk_exprs(top):
                    if isinstance(node, Index):
                        yield node

    # -- addressing -----------------------------------------------------------------

    def gen_address(self, node):
        """Address of Index *node* as (base_reg, immediate_offset)."""
        group = self.sr_map.get(id(node))
        if group is not None:
            return group.ptr, 0
        base = node.base
        elem = base.type.deref()
        elem_size = 1 if elem == CHAR else 4
        base_reg = self.gen_expr(base)
        sub = node.subscript
        if isinstance(sub, IntLit):
            offset = sub.value * elem_size
            if IMM12_MIN <= offset <= IMM12_MAX:
                return base_reg, offset
        sreg = self.gen_expr(sub)
        addr = self.v()
        if elem_size == 4:
            scaled = self.v()
            self.emit("slli", rd=scaled, rs1=sreg, imm=2)
            sreg = scaled
        self.emit("add", rd=addr, rs1=base_reg, rs2=sreg)
        return addr, 0

    # -- expressions ------------------------------------------------------------------

    def gen_expr(self, expr, dst=None):
        """Generate *expr*; returns the result register.  When *dst*
        is given the result is produced into it."""
        if isinstance(expr, IntLit):
            if expr.value == 0 and dst is None:
                return ZERO
            if not self.LI_MIN <= expr.value <= self.LI_MAX:
                src = self.float_reg[expr.value & 0xFFFFFFFF]
                if dst is None:
                    return src
                self.emit("mv", rd=dst, rs1=src)
                return dst
            return self.li(expr.value, dst)
        if isinstance(expr, FloatLit):
            bits = f32_to_bits(expr.value)
            if bits == 0:
                src = ZERO
            else:
                src = self.float_reg[bits]
            if dst is None:
                return src
            self.emit("mv", rd=dst, rs1=src)
            return dst
        if isinstance(expr, Var):
            sym = expr.symbol
            if sym.is_array:
                dst = dst or self.v()
                self.emit("addi", rd=dst, rs1=SP,
                          imm=self.array_offset[sym],
                          comment="&%s" % sym.name)
                return dst
            src = self.sym_reg[sym]
            if dst is None or dst == src:
                return src
            self.emit("mv", rd=dst, rs1=src)
            return dst
        if isinstance(expr, Index):
            base, offset = self.gen_address(expr)
            dst = dst or self.v()
            elem = expr.base.type.deref()
            self.emit("lbu" if elem == CHAR else "lw",
                      rd=dst, rs1=base, imm=offset)
            return dst
        if isinstance(expr, Unary):
            return self.gen_unary(expr, dst)
        if isinstance(expr, Cast):
            return self.gen_cast(expr, dst)
        if isinstance(expr, Binary):
            return self.gen_binary(expr, dst)
        if isinstance(expr, Call):
            return self.gen_call(expr, dst)
        raise CompileError("cannot generate expression %r" % expr,
                           expr.line)  # pragma: no cover

    def gen_unary(self, expr, dst):
        operand = self.gen_expr(expr.operand)
        dst = dst or self.v()
        if expr.op == "-":
            if expr.type == FLOAT:
                self.emit("fsub.s", rd=dst, rs1=ZERO, rs2=operand)
            else:
                self.emit("sub", rd=dst, rs1=ZERO, rs2=operand)
        elif expr.op == "!":
            self.emit("sltiu", rd=dst, rs1=operand, imm=1)
        else:  # '~'
            self.emit("xori", rd=dst, rs1=operand, imm=-1)
        return dst

    def gen_cast(self, expr, dst):
        src_ty = expr.operand.type
        operand = self.gen_expr(expr.operand)
        target = expr.target
        if target == FLOAT and src_ty != FLOAT:
            dst = dst or self.v()
            self.emit("fcvt.s.w", rd=dst, rs1=operand)
            return dst
        if target != FLOAT and src_ty == FLOAT:
            dst = dst or self.v()
            self.emit("fcvt.w.s", rd=dst, rs1=operand)
            if target == CHAR:
                self.emit("andi", rd=dst, rs1=dst, imm=0xFF)
            return dst
        if target == CHAR:
            dst = dst or self.v()
            self.emit("andi", rd=dst, rs1=operand, imm=0xFF)
            return dst
        if dst is not None and dst != operand:
            self.emit("mv", rd=dst, rs1=operand)
            return dst
        return operand

    # -- binary operators ------------------------------------------------------

    _INT_OPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
                "<<": "sll", ">>": "sra", "*": "mul", "/": "div",
                "%": "rem"}
    _INT_IMM_OPS = {"+": "addi", "&": "andi", "|": "ori", "^": "xori",
                    "<<": "slli", ">>": "srai"}
    _FLOAT_OPS = {"+": "fadd.s", "-": "fsub.s", "*": "fmul.s",
                  "/": "fdiv.s"}

    def gen_binary(self, expr, dst):
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_logical_value(expr, dst)
        left_ty = expr.left.type
        if op in _INT_CMP:
            return self._gen_compare_value(expr, dst)
        if left_ty == FLOAT:
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            dst = dst or self.v()
            self.emit(self._FLOAT_OPS[op], rd=dst, rs1=left, rs2=right)
            return dst
        # integer arithmetic with immediate folding
        left = self.gen_expr(expr.left)
        rhs = expr.right
        if isinstance(rhs, IntLit):
            value = rhs.value
            if op == "-" and IMM12_MIN <= -value <= IMM12_MAX:
                dst = dst or self.v()
                self.emit("addi", rd=dst, rs1=left, imm=-value)
                return dst
            if op in self._INT_IMM_OPS and (
                    op in ("<<", ">>") or IMM12_MIN <= value <= IMM12_MAX):
                dst = dst or self.v()
                self.emit(self._INT_IMM_OPS[op], rd=dst, rs1=left,
                          imm=value & 31 if op in ("<<", ">>") else value)
                return dst
            if op == "*" and value > 0 and (value & (value - 1)) == 0:
                dst = dst or self.v()
                self.emit("slli", rd=dst, rs1=left,
                          imm=value.bit_length() - 1)
                return dst
        right = self.gen_expr(rhs)
        dst = dst or self.v()
        self.emit(self._INT_OPS[op], rd=dst, rs1=left, rs2=right)
        return dst

    def _gen_compare_value(self, expr, dst):
        op = expr.op
        if expr.left.type == FLOAT:
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            dst = dst or self.v()
            if op == "<":
                self.emit("flt.s", rd=dst, rs1=left, rs2=right)
            elif op == ">":
                self.emit("flt.s", rd=dst, rs1=right, rs2=left)
            elif op == "<=":
                self.emit("fle.s", rd=dst, rs1=left, rs2=right)
            elif op == ">=":
                self.emit("fle.s", rd=dst, rs1=right, rs2=left)
            elif op == "==":
                self.emit("feq.s", rd=dst, rs1=left, rs2=right)
            else:  # '!='
                self.emit("feq.s", rd=dst, rs1=left, rs2=right)
                self.emit("xori", rd=dst, rs1=dst, imm=1)
            return dst
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        dst = dst or self.v()
        if op == "<":
            self.emit("slt", rd=dst, rs1=left, rs2=right)
        elif op == ">":
            self.emit("slt", rd=dst, rs1=right, rs2=left)
        elif op == "<=":
            self.emit("slt", rd=dst, rs1=right, rs2=left)
            self.emit("xori", rd=dst, rs1=dst, imm=1)
        elif op == ">=":
            self.emit("slt", rd=dst, rs1=left, rs2=right)
            self.emit("xori", rd=dst, rs1=dst, imm=1)
        elif op == "==":
            tmp = self.v()
            self.emit("sub", rd=tmp, rs1=left, rs2=right)
            self.emit("sltiu", rd=dst, rs1=tmp, imm=1)
        else:  # '!='
            tmp = self.v()
            self.emit("sub", rd=tmp, rs1=left, rs2=right)
            self.emit("sltu", rd=dst, rs1=ZERO, rs2=tmp)
        return dst

    def _gen_logical_value(self, expr, dst):
        dst = dst or self.v()
        Lfalse = self.label("lfalse")
        Ltrue = self.label("ltrue")
        Lend = self.label("lend")
        self.gen_branch(expr, Ltrue)
        self.emit_label(Lfalse)
        self.emit("mv", rd=dst, rs1=ZERO)
        self.emit("jal", rd=ZERO, label=Lend)
        self.emit_label(Ltrue)
        self.emit("li", rd=dst, imm=1)
        self.emit_label(Lend)
        return dst

    # -- conditional branches ----------------------------------------------------

    _BRANCH_INT = {"<": ("blt", False), ">": ("blt", True),
                   "<=": ("bge", True), ">=": ("bge", False),
                   "==": ("beq", False), "!=": ("bne", False)}
    _BRANCH_INT_INV = {"<": ("bge", False), ">": ("bge", True),
                       "<=": ("blt", True), ">=": ("blt", False),
                       "==": ("bne", False), "!=": ("beq", False)}

    def gen_branch(self, expr, target, invert=False):
        """Branch to *target* when expr is true (false if *invert*)."""
        if isinstance(expr, Unary) and expr.op == "!":
            self.gen_branch(expr.operand, target, invert=not invert)
            return
        if isinstance(expr, Binary) and expr.op in ("&&", "||"):
            isand = (expr.op == "&&") != invert
            # De Morgan: inverted && becomes ||-of-inverted legs
            if isand:
                Lskip = self.label("sc")
                self.gen_branch(expr.left, Lskip,
                                invert=not invert)
                self.gen_branch(expr.right, target, invert=invert)
                self.emit_label(Lskip)
            else:
                self.gen_branch(expr.left, target, invert=invert)
                self.gen_branch(expr.right, target, invert=invert)
            return
        if (isinstance(expr, Binary) and expr.op in _INT_CMP
                and expr.left.type != FLOAT):
            table = self._BRANCH_INT_INV if invert else self._BRANCH_INT
            mn, swap = table[expr.op]
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            if swap:
                left, right = right, left
            self.emit(mn, rs1=left, rs2=right, label=target)
            return
        value = self.gen_expr(expr)
        self.emit("beq" if invert else "bne",
                  rs1=value, rs2=ZERO, label=target)

    # -- calls ---------------------------------------------------------------------

    def gen_call(self, expr, dst):
        name = expr.name
        if name in AMO_BUILTINS:
            return self._gen_amo(expr, dst)
        if name == "sqrtf":
            operand = self.gen_expr(expr.args[0])
            dst = dst or self.v()
            self.emit("fsqrt.s", rd=dst, rs1=operand)
            return dst
        self.has_calls = True
        arg_regs = [self.gen_expr(a) for a in expr.args]
        for k, r in enumerate(arg_regs):
            self.emit("mv", rd=preg(10 + k), rs1=r)
        self.call_positions.append(len(self.instrs))
        self.emit("jal", rd=RA, label=name)
        dst = dst or self.v()
        self.emit("mv", rd=dst, rs1=preg(10))
        return dst

    def _gen_amo(self, expr, dst):
        target = expr.args[0]
        if isinstance(target, AddrOf):
            base, offset = self.gen_address(target.operand)
            if offset:
                addr = self.v()
                self.emit("addi", rd=addr, rs1=base, imm=offset)
            else:
                addr = base
        else:
            addr = self.gen_expr(target)
        value = self.gen_expr(expr.args[1])
        dst = dst or self.v()
        self.emit(AMO_BUILTINS[expr.name], rd=dst, rs1=addr, rs2=value)
        return dst

    # -- rendering --------------------------------------------------------------------

    def _render(self, result):
        saves = list(result.used_callee_saved)
        save_ra = self.has_calls
        frame = self.array_bytes + result.spill_bytes \
            + 4 * len(saves) + (4 if save_ra else 0)
        frame = (frame + 15) & ~15
        if frame > 2047:
            raise CompileError(
                "frame of %r too large (%d bytes); pass big arrays as "
                "parameters" % (self.func.name, frame))
        save_base = self.array_bytes + result.spill_bytes

        lines = ["%s:" % self.func.name]
        if frame:
            lines.append("    addi sp, sp, %d" % (-frame))
        off = save_base
        from ..isa.registers import reg_name
        if save_ra:
            lines.append("    sw ra, %d(sp)" % off)
            off += 4
        for r in saves:
            lines.append("    sw %s, %d(sp)" % (reg_name(r), off))
            off += 4
        for ins in result.instrs:
            lines.append(ins.render(result.mapping))
        lines.append("%s:" % self._epilogue_label)
        off = save_base
        if save_ra:
            lines.append("    lw ra, %d(sp)" % off)
            off += 4
        for r in saves:
            lines.append("    lw %s, %d(sp)" % (reg_name(r), off))
            off += 4
        if frame:
            lines.append("    addi sp, sp, %d" % frame)
        lines.append("    jalr zero, ra, 0")

        data_lines = []
        for bits, label in self.float_labels.items():
            data_lines.append("%s: .word %d" % (label, bits))
        return lines, data_lines
