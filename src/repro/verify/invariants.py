"""Runtime invariant monitor for specialized (LPSU) execution.

An :class:`InvariantMonitor` attaches to an
:class:`~repro.uarch.lpsu.LPSU` through the same observer-style hook
points as the lane tracer (``lpsu.monitor``): the LPSU notifies it on
iteration begin/retire, CIB publish/consume, committed stores and their
squash broadcasts, and iteration squash/discard.  The monitor is a pure
observer — it never mutates LPSU, cache, memory or energy state — so a
verified run is cycle- and energy-bit-identical to an unverified one
(regression-tested in ``tests/verify``).

Checked invariants (paper Sections II-D, IV-B/C):

* **CIB ordering** (``xloop.or/orm``): every cross-iteration-register
  value is consumed only after its producer published it (produce
  cycle <= consume cycle), channel ``(cir, k)`` is written exactly once
  by iteration ``k-1`` (re-publish allowed only after that iteration
  was squashed), and a retiring iteration never holds a value that a
  replay later changed.
* **LSQ squash-set correctness** (``xloop.om/orm/ua`` and ``.de``):
  stores reach memory only from the commit-head iteration, every
  committed store is broadcast exactly once (conflict-squashing
  patterns), and a squashed or discarded iteration has zero stores
  visible in memory.
* **MIVT consistency** (``xi``): at each iteration boundary the serial
  golden execution's MIV registers equal the MIVT claim
  ``live_in + increment * k``, and the index register advances by one.
* **Golden-oracle equivalence**: per-iteration committed store/AMO
  streams (LSQ patterns), per-iteration CIR values, the architectural
  hand-back (index, bound, CIRs, MIVs, exit registers), and the final
  memory image all match a serial execution of the same loop.
* **Iteration-boundary hand-back**: specialized execution — including
  an adaptive-profiling early stop — returns to the GPP only at an
  iteration boundary: the retired-iteration count, hand-back registers
  and memory correspond to a whole number of serial iterations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..sim.memory import MASK32
from .oracle import SerialOracle


class InvariantViolation(Exception):
    """A runtime invariant of specialized execution was violated.

    Carries a cycle-stamped, lane-stamped report: *check* is the
    invariant family (``cib-order``, ``lsq-stream``, ``mivt``, ...),
    *cycle*/*lane*/*iteration* locate the violation.
    """

    def __init__(self, check, message, cycle=None, lane=None,
                 iteration=None):
        self.check = check
        self.message = message
        self.cycle = cycle
        self.lane = lane
        self.iteration = iteration
        stamp = []
        if cycle is not None:
            stamp.append("cycle %d" % cycle)
        if lane is not None:
            stamp.append("lane %d" % lane)
        if iteration is not None:
            stamp.append("iter %d" % iteration)
        super().__init__("[%s] %s: %s"
                         % (check, " ".join(stamp) or "finalize",
                            message))


class InvariantMonitor:
    """Observer checking LPSU execution against its invariants.

    Construct one per specialized invocation with the loop descriptor,
    the live-in register file, and the shared architectural memory
    (cloned into the serial oracle's shadow), then pass it to
    ``LPSU(..., monitor=...)`` and call :meth:`finalize` on the
    :class:`~repro.uarch.lpsu.LPSUResult`.
    """

    def __init__(self, descriptor, live_in_regs, mem):
        d = descriptor
        self.d = d
        self.live_in = list(live_in_regs)
        self.mem = mem
        self.oracle = SerialOracle(d, live_in_regs, mem)
        self.start_idx = self.oracle.start_idx
        # mirror the LPSU's pattern decomposition
        self.squash_on_conflict = d.kind.data.needs_memory_disambiguation
        self.control_speculative = d.kind.control.value == "de"
        self.needs_lsq = self.squash_on_conflict or self.control_speculative
        self.ordered_regs = d.kind.data.ordered_through_registers
        self.dynamic_bound = d.kind.control.value == "db"
        # an unordered loop claiming slots through AMOs (worklist
        # kernels) is order-dependent by design: any lane interleaving
        # is architecturally valid, so the final memory image is not
        # required to equal the serial one
        self.racy = (not self.needs_lsq
                     and any(ins.op.is_amo for ins in d.body))
        #: the shadow serial execution lost lockstep with the real run
        #: (only possible for racy dynamic-bound worklists, where claim
        #: order can outpace the serial push order); once set, oracle-
        #: derived comparisons are abandoned for this invocation
        self._desynced = False

        # CIB channel records: (cir, k) -> (value, avail_cycle, producer_k)
        self._channels: Dict[Tuple[int, int], Tuple[int, int, int]] = {
            (cir, 0): (self.live_in[cir] & MASK32, 0, -1) for cir in d.cirs}
        #: channels whose producer iteration was squashed (re-publish ok)
        self._republishable: Set[Tuple[int, int]] = set()
        # per-iteration CIR values consumed by the current attempt
        self._consumed: Dict[int, Dict[int, int]] = {}
        # per-iteration committed store/AMO stream (LSQ patterns only)
        self._commits: Dict[int, List[Tuple[str, int, int, int]]] = {}
        # one committed store awaiting its squash broadcast
        self._pending_broadcast = None
        # retires seen but not yet oracle-advanced (non-LSQ patterns
        # may retire out of index order; the oracle runs in order)
        self._pending_retires: Dict[int, Tuple[int, int]] = {}
        self.retires = 0
        self.squashes = 0

    # ------------------------------------------------------------------
    # LPSU hook points (all pure observers)
    # ------------------------------------------------------------------

    def on_begin(self, lane, k, cycle, regs):
        """Iteration *k* starts on *lane*: index/MIV initialization
        must match the MIVT claims."""
        d = self.d
        want_idx = (self.start_idx + k) & MASK32
        if regs[d.idx_reg] & MASK32 != want_idx:
            raise InvariantViolation(
                "mivt", "iteration starts with index x%d=0x%x, expected "
                "0x%x" % (d.idx_reg, regs[d.idx_reg], want_idx),
                cycle=cycle, lane=lane, iteration=k)
        for miv in d.mivt.values():
            want = (self.live_in[miv.reg] + miv.increment * k) & MASK32
            if regs[miv.reg] & MASK32 != want:
                raise InvariantViolation(
                    "mivt", "MIV x%d initialized to 0x%x, MIVT claims "
                    "0x%x (live-in 0x%x + %d*%d)"
                    % (miv.reg, regs[miv.reg], want,
                       self.live_in[miv.reg], miv.increment, k),
                    cycle=cycle, lane=lane, iteration=k)

    def on_cib_publish(self, lane, producer_k, cir, value, avail_cycle,
                       cycle):
        """Iteration *producer_k* publishes *cir* for iteration
        ``producer_k + 1`` (ready at *avail_cycle*)."""
        if cir not in self.d.cirs:
            raise InvariantViolation(
                "cib-order", "publish of non-CIR register x%d" % cir,
                cycle=cycle, lane=lane, iteration=producer_k)
        key = (cir, producer_k + 1)
        if key in self._channels and key not in self._republishable:
            raise InvariantViolation(
                "cib-order", "channel (x%d, iter %d) published twice "
                "without an intervening squash" % (cir, key[1]),
                cycle=cycle, lane=lane, iteration=producer_k)
        self._republishable.discard(key)
        self._channels[key] = (value & MASK32, avail_cycle, producer_k)

    def on_cib_consume(self, lane, k, cir, value, cycle):
        """Iteration *k* receives *cir* from the CIB at *cycle*."""
        chan = self._channels.get((cir, k))
        if chan is None:
            raise InvariantViolation(
                "cib-order", "iteration consumed x%d before iteration "
                "%d produced it" % (cir, k - 1),
                cycle=cycle, lane=lane, iteration=k)
        cvalue, avail, _producer = chan
        if cycle < avail:
            raise InvariantViolation(
                "cib-order", "x%d consumed at cycle %d but the producer "
                "publishes at cycle %d" % (cir, cycle, avail),
                cycle=cycle, lane=lane, iteration=k)
        if value & MASK32 != cvalue:
            raise InvariantViolation(
                "cib-value", "x%d consumed as 0x%x but the channel "
                "holds 0x%x" % (cir, value & MASK32, cvalue),
                cycle=cycle, lane=lane, iteration=k)
        self._consumed.setdefault(k, {})[cir] = value & MASK32

    def on_commit_store(self, lane, k, kind, addr, size, value, cycle):
        """A store/AMO from iteration *k* reached architectural memory."""
        if not self.needs_lsq:
            return  # direct stores may legally complete in any order
        head = self.oracle.iterations
        if k != head:
            raise InvariantViolation(
                "lsq-commit-order", "iteration %d wrote memory while "
                "iteration %d is the commit head" % (k, head),
                cycle=cycle, lane=lane, iteration=k)
        if self.squash_on_conflict:
            if self._pending_broadcast is not None:
                pk, pword, pcycle = self._pending_broadcast
                raise InvariantViolation(
                    "lsq-broadcast", "store to 0x%x (iter %d, cycle %d) "
                    "was never broadcast" % (pword, pk, pcycle),
                    cycle=cycle, lane=lane, iteration=k)
            self._pending_broadcast = (k, addr & ~3, cycle)
        self._commits.setdefault(k, []).append(
            (kind, addr & MASK32, size,
             value & ((1 << (8 * size)) - 1)))

    def on_broadcast(self, lane, k, word, cycle):
        """Iteration *k* broadcast committed-store address *word*."""
        if not self.squash_on_conflict:
            raise InvariantViolation(
                "lsq-broadcast", "address broadcast on a pattern "
                "without memory disambiguation",
                cycle=cycle, lane=lane, iteration=k)
        if self._pending_broadcast is None:
            raise InvariantViolation(
                "lsq-broadcast", "broadcast of 0x%x without a matching "
                "committed store" % word,
                cycle=cycle, lane=lane, iteration=k)
        pk, pword, pcycle = self._pending_broadcast
        if pk != k or pword != word & ~3 or pcycle != cycle:
            raise InvariantViolation(
                "lsq-broadcast", "broadcast (iter %d, 0x%x, cycle %d) "
                "does not match the committed store (iter %d, 0x%x, "
                "cycle %d)" % (k, word, cycle, pk, pword, pcycle),
                cycle=cycle, lane=lane, iteration=k)
        self._pending_broadcast = None

    def on_squash(self, lane, k, cycle, buffered_stores):
        """Iteration *k*'s speculative attempt is squashed for replay."""
        self.squashes += 1
        if self._commits.get(k):
            raise InvariantViolation(
                "lsq-squash", "iteration squashed after %d of its "
                "stores reached memory" % len(self._commits[k]),
                cycle=cycle, lane=lane, iteration=k)
        # NOTE: the replay keeps its received CIRs (``_init_iter_regs``
        # re-applies them), so the consumed record survives the squash
        # and the retire-time staleness check still sees it.
        # its published channels may be legitimately re-published
        for cir in self.d.cirs:
            chan = self._channels.get((cir, k + 1))
            if chan is not None and chan[2] == k:
                self._republishable.add((cir, k + 1))

    def on_discard(self, lane, k, cycle):
        """Iteration *k* is discarded (an older iteration exited)."""
        if self._commits.get(k):
            raise InvariantViolation(
                "lsq-squash", "discarded iteration had %d stores "
                "visible in memory" % len(self._commits[k]),
                cycle=cycle, lane=lane, iteration=k)
        self._consumed.pop(k, None)
        self._commits.pop(k, None)
        self._pending_retires.pop(k, None)

    def on_retire(self, lane, k, cycle, regs):
        """Iteration *k* retired: advance the serial oracle and compare."""
        self.retires += 1
        if self.needs_lsq and k != self.oracle.iterations:
            raise InvariantViolation(
                "lsq-commit-order", "iteration retired while iteration "
                "%d is the commit head" % self.oracle.iterations,
                cycle=cycle, lane=lane, iteration=k)
        self._pending_retires[k] = (lane, cycle)
        while self.oracle.iterations in self._pending_retires:
            j = self.oracle.iterations
            jlane, jcycle = self._pending_retires.pop(j)
            self._advance_oracle(j, jlane, jcycle)

    # ------------------------------------------------------------------

    def _advance_oracle(self, k, lane, cycle):
        d, oracle = self.d, self.oracle
        if self._desynced:
            return
        if not oracle.would_iterate():
            if self.racy and self.dynamic_bound:
                # the real interleaving claimed worklist item k before
                # the serial push order produced it; the shadow
                # execution cannot follow from here (its slot k is
                # still unwritten), so stop comparing rather than
                # judge a legal racy schedule against the wrong oracle
                self._desynced = True
                return
            raise InvariantViolation(
                "trip-count", "iteration retired but the serial "
                "execution ends after %d iterations" % oracle.iterations,
                cycle=cycle, lane=lane, iteration=k)

        # boundary register values, before the serial iteration runs
        pre_idx = oracle.reg(d.idx_reg)
        pre_miv = {miv.reg: oracle.reg(miv.reg)
                   for miv in d.mivt.values()}
        serial_log = list(oracle.run_iteration())

        # MIVT/index consistency against genuine serial execution --
        # but only for registers the iteration read before writing:
        # a register recomputed at body entry is dead at the boundary,
        # so its MIVT claim is architecturally unobservable (e.g. an
        # inner loop's xi pointer scanned into an outer loop's MIVT)
        if d.idx_reg in oracle.read_first:
            want_idx = (self.start_idx + k) & MASK32
            if pre_idx != want_idx:
                raise InvariantViolation(
                    "mivt", "serial index at iteration %d is 0x%x, the "
                    "LPSU iteration numbering claims 0x%x"
                    % (k, pre_idx, want_idx),
                    cycle=cycle, lane=lane, iteration=k)
        for miv in d.mivt.values():
            if miv.reg not in oracle.read_first:
                continue
            want = (self.live_in[miv.reg] + miv.increment * k) & MASK32
            if pre_miv[miv.reg] != want:
                raise InvariantViolation(
                    "mivt", "serial MIV x%d at iteration %d is 0x%x, "
                    "MIVT claims 0x%x"
                    % (miv.reg, k, pre_miv[miv.reg], want),
                    cycle=cycle, lane=lane, iteration=k)

        if self.needs_lsq:
            mine = self._commits.pop(k, [])
            if mine != serial_log:
                raise InvariantViolation(
                    "lsq-stream", "committed store stream %r differs "
                    "from the serial stream %r"
                    % (mine[:6], serial_log[:6]),
                    cycle=cycle, lane=lane, iteration=k)
        if self.ordered_regs:
            for cir in d.cirs:
                chan = self._channels.get((cir, k + 1))
                if chan is None:
                    raise InvariantViolation(
                        "cib-order", "iteration retired without "
                        "publishing x%d" % cir,
                        cycle=cycle, lane=lane, iteration=k)
                if chan[0] != oracle.reg(cir):
                    raise InvariantViolation(
                        "cib-value", "published x%d=0x%x, serial value "
                        "is 0x%x" % (cir, chan[0], oracle.reg(cir)),
                        cycle=cycle, lane=lane, iteration=k)
        # a retiring iteration must not hold CIR values a replay changed
        for cir, value in self._consumed.pop(k, {}).items():
            current = self._channels[(cir, k)][0]
            if current != value:
                raise InvariantViolation(
                    "cib-stale", "iteration retired holding x%d=0x%x "
                    "but the channel was republished as 0x%x"
                    % (cir, value, current),
                    cycle=cycle, lane=lane, iteration=k)

    # ------------------------------------------------------------------

    def finalize(self, result):
        """End-of-invocation checks against the serial oracle.

        Call with the :class:`~repro.uarch.lpsu.LPSUResult` immediately
        after ``LPSU.run`` returns (before the GPP resumes).
        """
        d, oracle = self.d, self.oracle
        cyc = result.cycles
        if self._pending_retires:
            raise InvariantViolation(
                "boundary", "iterations %r retired but older ones never "
                "did" % sorted(self._pending_retires), cycle=cyc)
        if self._pending_broadcast is not None:
            pk, pword, pcycle = self._pending_broadcast
            raise InvariantViolation(
                "lsq-broadcast", "store to 0x%x (iter %d) was never "
                "broadcast" % (pword, pk), cycle=cyc, iteration=pk)
        if result.iterations != self.retires:
            raise InvariantViolation(
                "boundary", "LPSU reports %d iterations but %d retired"
                % (result.iterations, self.retires), cycle=cyc)
        if self._desynced:
            # the serial oracle lost lockstep (racy dynamic-bound
            # worklist); hook-level invariants above still held, but
            # boundary-state comparisons have no reference to check
            return
        if self.retires != oracle.iterations:
            raise InvariantViolation(
                "boundary", "%d iterations retired but the serial "
                "oracle ran %d" % (self.retires, oracle.iterations),
                cycle=cyc)
        if result.exited != oracle.exited:
            raise InvariantViolation(
                "exit", "LPSU exited=%r but serial execution exited=%r"
                % (result.exited, oracle.exited), cycle=cyc)
        if result.exited:
            # only registers the exiting serial iteration wrote carry a
            # defined value: exit_copy_regs over-approximates with every
            # body-written register, and a lane's copy of a
            # conditionally-written one holds whatever iteration that
            # lane ran last (dead downstream, or results would diverge)
            for r in sorted(d.exit_copy_regs & oracle.last_written):
                got = result.exit_regs.get(r)
                if got is None or got & MASK32 != oracle.reg(r):
                    raise InvariantViolation(
                        "exit", "exit copy-back x%d=%r, serial value "
                        "0x%x" % (r, got, oracle.reg(r)), cycle=cyc)
        elif self.racy and self.dynamic_bound:
            # a racy worklist's dynamic bound counts pushes, and the
            # *prefix* push count after N iterations is interleaving-
            # dependent (only the completed total is deterministic), so
            # mid-loop trip decisions can't be judged against the oracle
            pass
        elif result.completed and oracle.would_iterate():
            raise InvariantViolation(
                "trip-count", "LPSU completed after %d iterations but "
                "the serial loop would continue" % oracle.iterations,
                cycle=cyc)
        elif not result.completed and not oracle.would_iterate():
            raise InvariantViolation(
                "boundary", "early hand-back after %d iterations but "
                "the serial loop is already done" % oracle.iterations,
                cycle=cyc)

        # architectural hand-back = serial state at the same boundary
        if result.final_idx & MASK32 != oracle.reg(d.idx_reg):
            raise InvariantViolation(
                "boundary", "hand-back index 0x%x, serial 0x%x"
                % (result.final_idx & MASK32, oracle.reg(d.idx_reg)),
                cycle=cyc)
        if (not (self.racy and self.dynamic_bound)
                and result.final_bound & MASK32 != oracle.reg(d.bound_reg)):
            raise InvariantViolation(
                "boundary", "hand-back bound 0x%x, serial 0x%x"
                % (result.final_bound & MASK32, oracle.reg(d.bound_reg)),
                cycle=cyc)
        for cir in sorted(d.cirs):
            got = result.cir_values.get(cir)
            if got is None or got & MASK32 != oracle.reg(cir):
                raise InvariantViolation(
                    "boundary", "hand-back CIR x%d=%r, serial 0x%x"
                    % (cir, got, oracle.reg(cir)), cycle=cyc)
        for miv in d.mivt.values():
            got = result.miv_values.get(miv.reg)
            if not result.exited and miv.reg not in oracle.ever_read_first:
                continue  # never boundary-observable (recomputed at entry)
            if result.exited:
                # an xloop.break leaves the serial body mid-iteration;
                # the hand-back convention still advances MIVs to the
                # next iteration boundary (they are excluded from the
                # exiting lane's register copy-back)
                want = (self.live_in[miv.reg]
                        + miv.increment * oracle.iterations) & MASK32
            else:
                want = oracle.reg(miv.reg)
            if got is None or got & MASK32 != want:
                raise InvariantViolation(
                    "boundary", "hand-back MIV x%d=%r, expected 0x%x"
                    % (miv.reg, got, want), cycle=cyc)
        if not self.racy and not self.mem.pages_equal(oracle.mem):
            addr = self.mem.first_difference(oracle.mem)
            raise InvariantViolation(
                "memory", "architectural memory differs from serial "
                "execution at 0x%x" % addr, cycle=cyc)
        return self
