"""Instruction metadata for the XLOOPS base RISC ISA.

The base ISA is a 32-bit RISC (RISC-V flavoured operand order, MIPS-era
feature set): unified int/FP register file, no branch delay slot
(Section III of the paper).  XLOOPS extends it with the ``xloop.*``
family and the cross-iteration (``.xi``) induction instructions
(Table I).

This module is pure metadata: mnemonics, operand formats, functional
unit classes, and behavioural flags.  Semantics live in
:mod:`repro.sim.functional`; timing lives in :mod:`repro.uarch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .xloops import XLoopKind


class FU:
    """Functional-unit classes used by all timing models."""

    ALU = "alu"      # single-cycle integer ops
    MUL = "mul"      # LLFU: integer multiply
    DIV = "div"      # LLFU: integer divide / remainder
    FPU = "fpu"      # LLFU: FP add/sub/mul/compare/convert
    FDIV = "fdiv"    # LLFU: FP divide / sqrt
    MEM = "mem"      # loads/stores/AMOs (shared memory port)
    BR = "br"        # branches and jumps
    XLOOP = "xloop"  # xloop.* (a branch on traditional execution)

    LLFU_CLASSES = frozenset({MUL, DIV, FPU, FDIV})


class Fmt:
    """Assembly operand formats."""

    R = "R"          # op rd, rs1, rs2
    I = "I"          # op rd, rs1, imm
    I_SHIFT = "IS"   # op rd, rs1, shamt
    LOAD = "L"       # op rd, imm(rs1)
    STORE = "S"      # op rs2, imm(rs1)
    AMO = "A"        # op rd, rs2, (rs1)
    BRANCH = "B"     # op rs1, rs2, label
    JAL = "J"        # op rd, label
    JALR = "JR"      # op rd, rs1, imm
    LUI = "U"        # op rd, imm
    XLOOP = "X"      # op rs1(idx), rs2(bound), label
    XI_I = "XI"      # op rd, rs1, imm      (addiu.xi)
    XI_R = "XR"      # op rd, rs1, rs2      (addu.xi)
    R2 = "R2"        # op rd, rs1           (unary: fcvt, fsqrt)
    NONE = "N"       # op                   (fence, nop)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str
    fu: str
    is_load: bool = False
    is_store: bool = False
    is_amo: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_xloop: bool = False
    is_xbreak: bool = False
    is_xi: bool = False
    is_fp: bool = False
    is_fence: bool = False
    writes_rd: bool = True
    xloop_kind: Optional[XLoopKind] = None

    @property
    def is_mem(self):
        return self.is_load or self.is_store or self.is_amo

    @property
    def is_llfu(self):
        return self.fu in FU.LLFU_CLASSES

    @property
    def is_control(self):
        return self.is_branch or self.is_jump or self.is_xloop


OPS = {}


def _op(mnemonic, fmt, fu, **flags):
    spec = OpSpec(mnemonic, fmt, fu, **flags)
    OPS[mnemonic] = spec
    return spec


# --- integer register-register -----------------------------------------
for _m in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
           "slt", "sltu"):
    _op(_m, Fmt.R, FU.ALU)
_op("mul", Fmt.R, FU.MUL)
_op("mulh", Fmt.R, FU.MUL)
_op("div", Fmt.R, FU.DIV)
_op("divu", Fmt.R, FU.DIV)
_op("rem", Fmt.R, FU.DIV)
_op("remu", Fmt.R, FU.DIV)

# --- integer register-immediate -----------------------------------------
for _m in ("addi", "andi", "ori", "xori", "slti", "sltiu"):
    _op(_m, Fmt.I, FU.ALU)
for _m in ("slli", "srli", "srai"):
    _op(_m, Fmt.I_SHIFT, FU.ALU)
_op("lui", Fmt.LUI, FU.ALU)

# --- floating point (unified register file) ------------------------------
for _m in ("fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s",
           "flt.s", "fle.s", "feq.s"):
    _op(_m, Fmt.R, FU.FPU, is_fp=True)
_op("fcvt.s.w", Fmt.R2, FU.FPU, is_fp=True)
_op("fcvt.w.s", Fmt.R2, FU.FPU, is_fp=True)
_op("fdiv.s", Fmt.R, FU.FDIV, is_fp=True)
_op("fsqrt.s", Fmt.R2, FU.FDIV, is_fp=True)

# --- memory ---------------------------------------------------------------
for _m in ("lw", "lh", "lhu", "lb", "lbu"):
    _op(_m, Fmt.LOAD, FU.MEM, is_load=True)
for _m in ("sw", "sh", "sb"):
    _op(_m, Fmt.STORE, FU.MEM, is_store=True, writes_rd=False)
# AMOs return the *old* memory value in rd (paper uses amo.add et al. for
# worklists and atomic histogram updates).
for _m in ("amo.add", "amo.and", "amo.or", "amo.xor",
           "amo.min", "amo.max", "amo.xchg"):
    _op(_m, Fmt.AMO, FU.MEM, is_amo=True)
_op("fence", Fmt.NONE, FU.MEM, is_fence=True, writes_rd=False)

# --- control flow ----------------------------------------------------------
for _m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
    _op(_m, Fmt.BRANCH, FU.BR, is_branch=True, writes_rd=False)
_op("jal", Fmt.JAL, FU.BR, is_jump=True)
_op("jalr", Fmt.JALR, FU.BR, is_jump=True)

# --- XLOOPS extensions (Table I + the data-dependent-exit extension) -------
for _kind in (XLoopKind.from_mnemonic(m) for m in (
        "xloop.uc", "xloop.or", "xloop.om", "xloop.orm", "xloop.ua",
        "xloop.uc.db", "xloop.or.db", "xloop.om.db", "xloop.orm.db",
        "xloop.ua.db",
        "xloop.uc.de", "xloop.or.de", "xloop.om.de", "xloop.orm.de",
        "xloop.ua.de")):
    _op(_kind.mnemonic, Fmt.XLOOP, FU.XLOOP, is_xloop=True,
        writes_rd=False, xloop_kind=_kind)
# xloop.break: inside an xloop.*.de body, terminates the loop after
# the current iteration commits; a plain forward jump traditionally.
_op("xloop.break", Fmt.JAL, FU.BR, is_xbreak=True, is_jump=True,
    writes_rd=False)
_op("addiu.xi", Fmt.XI_I, FU.ALU, is_xi=True)
_op("addu.xi", Fmt.XI_R, FU.ALU, is_xi=True)


@dataclass
class Instr:
    """One assembled instruction.

    ``imm`` holds the immediate (branch/jump targets are byte offsets
    relative to the instruction's own PC, already resolved by the
    assembler).  ``label`` keeps the symbolic target for disassembly.
    """

    op: OpSpec
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: Optional[str] = None
    pc: int = 0
    # Scheduling metadata set by the assembler / compiler:
    last_cir_write: bool = False   # paper II-D: "last CIR write" bit
    srcline: Optional[int] = None
    # Operand caches, filled lazily on first query.  Operand fields are
    # only mutated during assembly, before any simulator touches the
    # instruction, so caching after assembly is safe; the timing models
    # query these on every dynamic instruction.
    _srcs: Optional[tuple] = field(default=None, init=False, repr=False,
                                   compare=False)
    _dst: object = field(default=False, init=False, repr=False,
                         compare=False)

    @property
    def mnemonic(self):
        return self.op.mnemonic

    def src_regs(self):
        """Architectural source register numbers (may contain duplicates)."""
        srcs = self._srcs
        if srcs is None:
            fmt = self.op.fmt
            if fmt in (Fmt.R, Fmt.XI_R, Fmt.STORE, Fmt.AMO, Fmt.BRANCH,
                       Fmt.XLOOP):
                srcs = (self.rs1, self.rs2)
            elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.LOAD, Fmt.JALR, Fmt.XI_I,
                         Fmt.R2):
                srcs = (self.rs1,)
            else:
                srcs = ()
            self._srcs = srcs
        return srcs

    def dst_reg(self):
        """Destination register number, or None."""
        dst = self._dst
        if dst is False:            # sentinel: None is a valid answer
            dst = self.rd if (self.op.writes_rd and self.rd != 0) else None
            self._dst = dst
        return dst

    def branch_target(self):
        """Absolute byte target for branches / jumps / xloops."""
        return self.pc + self.imm

    def __str__(self):
        from ..asm.disasm import format_instr
        return format_instr(self)


def spec(mnemonic):
    """Look up the :class:`OpSpec` for *mnemonic* (raises KeyError)."""
    return OPS[mnemonic]


#: mnemonics accepted by the assembler, sorted longest-first so that the
#: lexer can match e.g. ``xloop.uc.db`` before ``xloop.uc``.
ALL_MNEMONICS = tuple(sorted(OPS, key=len, reverse=True))
