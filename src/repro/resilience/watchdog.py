"""Wall-clock deadlines for simulation work.

A corrupted simulator state can spin forever without tripping any
cycle budget (e.g. a fault that lands in GPP register state after the
specialized phase hands back).  :func:`deadline` bounds the *wall
clock* of a block of work, raising :class:`DeadlineExceeded` from
inside it.

The implementation uses ``signal.setitimer(ITIMER_REAL)``, which is
only legal on the main thread of a POSIX process.  Anywhere else the
context manager degrades to a no-op -- callers that need a hard bound
off the main thread use process-level isolation instead
(:mod:`repro.eval.hardening` kills the whole worker process).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager


class DeadlineExceeded(Exception):
    """A :func:`deadline` wall-clock budget expired."""


def alarm_capable():
    """Can :func:`deadline` actually arm a timer here?"""
    return (hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def deadline(seconds):
    """Bound the wall-clock time of the enclosed block.

    ``seconds`` of ``None`` or ``<= 0`` disables the deadline.  Does
    not nest (the inner deadline would clobber the outer timer);
    callers hold at most one at a time.
    """
    if not seconds or seconds <= 0 or not alarm_capable():
        yield
        return

    def _fire(signum, frame):
        raise DeadlineExceeded(
            "wall-clock deadline of %.3gs expired" % seconds)

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
