"""VLSI evaluation (paper Section V): CACTI-lite SRAM estimates and the
Table V area / cycle-time model for the uc-only LPSU implementation."""

from .cacti import SRAMEstimate, sram, buffer_array, cache_macro
from .area import (AreaReport, gpp_area, lpsu_area, cycle_time_ns,
                   table5_rows, GPP_CORE_LOGIC, LANE_LOGIC, LMU_AREA)

__all__ = ["SRAMEstimate", "sram", "buffer_array", "cache_macro",
           "AreaReport", "gpp_area", "lpsu_area", "cycle_time_ns",
           "table5_rows", "GPP_CORE_LOGIC", "LANE_LOGIC", "LMU_AREA"]
