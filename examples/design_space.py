"""Domain scenario: sizing an LPSU for a signal-processing pipeline.

An architect wants to know how many lanes, memory ports, and LSQ
entries a deployment needs for a given kernel mix.  This example
sweeps the design space from the paper's Fig 9 over three kernels with
very different bottlenecks and prints cycles, area, and a simple
performance-per-area figure of merit.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.eval import render_table
from repro.eval.configs import ADAPTIVE, PRIMARY_LPSU
from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, SystemConfig, SystemSimulator
from repro.vlsi import gpp_area, lpsu_area

KERNELS = ("rgb2cmyk-uc",   # embarrassingly parallel, memory-light
           "viterbi-uc",    # memory-port bound
           "dynprog-om")    # LSQ / commit-order bound

DESIGNS = {
    "x2": replace(PRIMARY_LPSU, lanes=2),
    "x4 (primary)": PRIMARY_LPSU,
    "x8": replace(PRIMARY_LPSU, lanes=8),
    "x8+2ports": replace(PRIMARY_LPSU, lanes=8, mem_ports=2, llfus=2),
    "x8+2ports+lsq16": replace(PRIMARY_LPSU, lanes=8, mem_ports=2,
                               llfus=2, lsq_loads=16, lsq_stores=16),
}


def cycles_for(kernel_name, lpsu):
    spec = get_kernel(kernel_name)
    compiled = compile_source(spec.source)
    workload = spec.workload("small")
    mem = Memory()
    args = workload.apply(mem)
    cfg = SystemConfig("sweep", IO, lpsu=lpsu, adaptive=ADAPTIVE)
    sim = SystemSimulator(compiled.program, cfg, mem=mem)
    result = sim.run(entry=spec.entry, args=args, mode="specialized")
    workload.check(mem)
    return result.cycles


def main():
    base = gpp_area()
    rows = []
    for design_name, lpsu in DESIGNS.items():
        area = lpsu_area(lanes=lpsu.lanes).total_mm2
        cells = [design_name, "%.3f" % area]
        total_speedup = 1.0
        for k in KERNELS:
            baseline = cycles_for(k, PRIMARY_LPSU)
            cyc = cycles_for(k, lpsu)
            rel = baseline / cyc
            total_speedup *= rel
            cells.append("%.2f" % rel)
        fom = (total_speedup ** (1 / len(KERNELS))) / area
        cells.append("%.2f" % fom)
        rows.append(cells)
    print(render_table(
        ["Design", "mm2"] + list(KERNELS) + ["perf/mm2"], rows,
        title="LPSU design-space sweep (speedup vs the primary 4-lane "
              "design; perf/mm2 = geomean speedup / total area)"))
    print("\nReading the table: the parallel kernel scales with lanes "
          "once ports keep up; viterbi needs the second memory port; "
          "dynprog is commit-order bound and buys nothing from any of "
          "it — matching the paper's Fig 9 narrative.")


if __name__ == "__main__":
    main()
