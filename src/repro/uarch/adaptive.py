"""Adaptive execution: the adaptive profiling table (APT, Section II-E).

The APT is indexed by the PC of an ``xloop`` instruction and records
profiling progress.  Profiling runs in two phases:

1. **GPP profiling** — the loop executes traditionally while the GPP
   counts iterations and cycles, until it has seen
   ``profile_iters`` iterations or ``profile_cycles`` cycles (profiling
   may stretch across multiple dynamic instances of the xloop);
2. **LPSU profiling** — after the scan phase, the LPSU executes the
   same number of iterations; the LMU then compares cycle counts and
   records a sticky decision (the paper's implementation "does not
   reconsider the profiling results once a decision has been made").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .params import AdaptiveConfig

GPP_PROFILING = "gpp-profiling"
LPSU_PROFILING = "lpsu-profiling"
DECIDED_TRADITIONAL = "traditional"
DECIDED_SPECIALIZED = "specialized"


@dataclass
class APTEntry:
    """Profiling state for one static xloop."""

    state: str = GPP_PROFILING
    gpp_iters: int = 0
    gpp_cycles: int = 0
    lpsu_iters: int = 0
    lpsu_cycles: int = 0

    @property
    def decided(self):
        return self.state in (DECIDED_TRADITIONAL, DECIDED_SPECIALIZED)


class AdaptiveProfilingTable:
    """Fixed-capacity PC-indexed table with FIFO replacement."""

    def __init__(self, config=None):
        self.config = config or AdaptiveConfig()
        self._entries = OrderedDict()
        self.evictions = 0
        self.decisions = {}       # pc -> final decision (for reporting)

    def lookup(self, pc):
        entry = self._entries.get(pc)
        if entry is None:
            entry = APTEntry()
            self._entries[pc] = entry
            if len(self._entries) > self.config.apt_entries:
                evicted_pc, _ = self._entries.popitem(last=False)
                self.evictions += 1
                if evicted_pc == pc:  # pragma: no cover - capacity >= 1
                    self._entries[pc] = entry
        return entry

    def record_gpp_iteration(self, pc, cycles):
        """Account one traditionally-executed iteration taking *cycles*.
        Returns True when GPP profiling just completed."""
        entry = self.lookup(pc)
        if entry.state != GPP_PROFILING:
            return False
        entry.gpp_iters += 1
        entry.gpp_cycles += cycles
        cfg = self.config
        if (entry.gpp_iters >= cfg.profile_iters
                or entry.gpp_cycles >= cfg.profile_cycles):
            entry.state = LPSU_PROFILING
            return True
        return False

    def record_lpsu_profile(self, pc, iters, cycles):
        """Store the LPSU profiling result and make the decision."""
        entry = self.lookup(pc)
        entry.lpsu_iters = iters
        entry.lpsu_cycles = cycles
        # compare per-iteration costs over the same iteration count
        gpp_per_iter = entry.gpp_cycles / max(1, entry.gpp_iters)
        lpsu_per_iter = cycles / max(1, iters)
        if lpsu_per_iter <= gpp_per_iter:
            entry.state = DECIDED_SPECIALIZED
        else:
            entry.state = DECIDED_TRADITIONAL
        self.decisions[pc] = entry.state
        return entry.state
