"""Assembled-program container shared by the assembler, compiler,
functional simulator, and all timing models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.instructions import Instr

#: default load addresses (flat address space, no MMU)
TEXT_BASE = 0x0000_1000
DATA_BASE = 0x0001_0000


@dataclass
class Program:
    """An assembled unit: text (instructions), data image, symbols.

    ``instrs`` are laid out contiguously starting at ``text_base``;
    instruction *i* lives at ``text_base + 4*i``.  ``data`` is a byte
    image placed at ``data_base``.
    """

    instrs: List[Instr] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    symbols: Dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    source: Optional[str] = None

    def instr_at(self, pc):
        """Instruction at byte address *pc* (raises on a bad fetch)."""
        idx = (pc - self.text_base) >> 2
        if pc & 3 or not 0 <= idx < len(self.instrs):
            raise IndexError("bad instruction fetch at pc=0x%x" % pc)
        return self.instrs[idx]

    def in_text(self, pc):
        return (self.text_base <= pc < self.text_base + 4 * len(self.instrs)
                and pc % 4 == 0)

    @property
    def text_size(self):
        return 4 * len(self.instrs)

    def entry(self, name="main"):
        """Byte address of label *name*."""
        return self.symbols[name]

    def label_at(self, pc):
        """Any label bound to byte address *pc* (for disassembly)."""
        for name, addr in self.symbols.items():
            if addr == pc:
                return name
        return None

    def listing(self):
        """Human-readable disassembly listing of the text section."""
        from .disasm import format_instr
        addr_labels = {}
        for name, a in self.symbols.items():
            addr_labels.setdefault(a, []).append(name)
        lines = []
        for instr in self.instrs:
            for name in addr_labels.get(instr.pc, ()):
                lines.append("%s:" % name)
            lines.append("    %08x  %s" % (instr.pc, format_instr(instr)))
        return "\n".join(lines)
