"""Direct unit tests for the virtual-assembly representation and the
linear-scan register allocator."""

import pytest

from repro.lang.lexer import CompileError
from repro.lang.regalloc import (ARG_POOL, CALLEE_POOL, CALLER_POOL,
                                 SCRATCH, allocate)
from repro.lang.vasm import RA, SP, VInstr, ZERO, preg, vreg


def v(n):
    return vreg(n)


class TestVInstr:
    def test_defs_uses_alu(self):
        ins = VInstr("add", rd=v(0), rs1=v(1), rs2=v(2))
        assert ins.defs() == (v(0),)
        assert set(ins.uses()) == {v(1), v(2)}

    def test_defs_uses_store(self):
        ins = VInstr("sw", rs1=v(1), rs2=v(2), imm=0)
        assert ins.defs() == ()
        assert set(ins.uses()) == {v(1), v(2)}

    def test_defs_uses_pseudos(self):
        assert VInstr("li", rd=v(0), imm=5).defs() == (v(0),)
        assert VInstr("li", rd=v(0), imm=5).uses() == ()
        mv = VInstr("mv", rd=v(0), rs1=v(1))
        assert mv.defs() == (v(0),) and mv.uses() == (v(1),)
        la = VInstr("la", rd=v(3), label="x")
        assert la.defs() == (v(3),) and la.uses() == ()

    def test_label_has_no_defs_uses(self):
        lab = VInstr("L0", is_label=True)
        assert lab.defs() == () and lab.uses() == ()

    def test_render_with_mapping(self):
        ins = VInstr("add", rd=v(0), rs1=v(1), rs2=ZERO)
        text = ins.render({0: 5, 1: 6})
        assert text.strip() == "add t0, t1, zero"

    def test_render_branch_and_memory(self):
        b = VInstr("blt", rs1=v(0), rs2=v(1), label="loop")
        assert "blt t0, t1, loop" in b.render({0: 5, 1: 6})
        l = VInstr("lw", rd=v(0), rs1=("p", 2), imm=8)
        assert "lw t0, 8(sp)" in l.render({0: 5})

    def test_render_comment(self):
        ins = VInstr("mv", rd=v(0), rs1=ZERO, comment="zeroing")
        assert "# zeroing" in ins.render({0: 5})


class TestAllocator:
    def test_small_function_allocates_without_spills(self):
        instrs = [
            VInstr("li", rd=v(0), imm=1),
            VInstr("add", rd=v(1), rs1=v(0), rs2=v(0)),   # v0 dies
            VInstr("li", rd=v(2), imm=2),
            VInstr("add", rd=v(3), rs1=v(2), rs2=v(1)),
        ]
        res = allocate(instrs)
        assert not res.spill_slots
        assert set(res.mapping) == {0, 1, 2, 3}
        # simultaneously-live vregs get distinct registers
        assert res.mapping[1] != res.mapping[2]
        assert res.mapping[0] != res.mapping[1]

    def test_call_crossing_interval_gets_callee_saved(self):
        instrs = [
            VInstr("li", rd=v(0), imm=1),
            VInstr("jal", rd=RA, label="f"),
            VInstr("add", rd=v(1), rs1=v(0), rs2=v(0)),
        ]
        res = allocate(instrs, call_positions=[1])
        assert res.mapping[0] in CALLEE_POOL
        assert res.used_callee_saved

    def test_arg_regs_only_in_call_free_functions(self):
        many = [VInstr("li", rd=v(i), imm=i) for i in range(20)]
        use = [VInstr("add", rd=v(20), rs1=v(i), rs2=v(i + 1))
               for i in range(19)]
        res = allocate(many + use)
        assert any(r in ARG_POOL for r in res.mapping.values())
        res2 = allocate(many + use + [VInstr("jal", rd=RA, label="f")],
                        call_positions=[len(many + use)])
        assert not any(r in ARG_POOL for r in res2.mapping.values()
                       if r is not None)

    def test_low_arg_regs_blocked_during_entry_moves(self):
        # two parameters: an interval starting at position 0 must not
        # take a0/a1 (they still hold the incoming arguments)
        instrs = [
            VInstr("mv", rd=v(0), rs1=preg(10)),
            VInstr("mv", rd=v(1), rs1=preg(11)),
            VInstr("add", rd=v(2), rs1=v(0), rs2=v(1)),
        ]
        res = allocate(instrs, num_params=2)
        assert res.mapping[0] not in (10, 11)

    def test_loop_carried_interval_extends(self):
        # v0 defined before the loop, used at the loop top, and a temp
        # defined late in the loop must not steal its register
        instrs = [
            VInstr("li", rd=v(0), imm=1),        # 0: loop-carried
            VInstr("L", is_label=True),          # 1: loop head
            VInstr("add", rd=v(1), rs1=v(0), rs2=v(0)),   # 2
            VInstr("li", rd=v(2), imm=9),        # 3: born inside
            VInstr("add", rd=v(0), rs1=v(2), rs2=v(1)),   # 4 redefine
            VInstr("bne", rs1=v(1), rs2=ZERO, label="L"),  # 5 backedge
        ]
        res = allocate(instrs, loop_regions=[(1, 5)])
        assert res.mapping[2] != res.mapping[0]

    def test_spill_when_pressure_exceeds_pool(self):
        n = len(CALLER_POOL) + len(CALLEE_POOL) + len(ARG_POOL) + 4
        defs = [VInstr("li", rd=v(i), imm=i) for i in range(n)]
        uses = [VInstr("add", rd=v(n), rs1=v(i), rs2=v(n - 1 - i))
                for i in range(n // 2)]
        res = allocate(defs + uses)
        assert res.spill_slots
        assert res.spill_bytes == 4 * len(res.spill_slots)
        # spill code references only scratch registers and sp
        for ins in res.instrs:
            if ins.comment and "v" in str(ins.comment):
                regs = [r for r in (ins.rd, ins.rs1, ins.rs2)
                        if r is not None]
                for kind, num in regs:
                    assert kind == "p"
                    assert num in SCRATCH or num == 2

    def test_spill_inside_xloop_region_rejected(self):
        n = len(CALLER_POOL) + len(CALLEE_POOL) + len(ARG_POOL) + 4
        defs = [VInstr("li", rd=v(i), imm=i) for i in range(n)]
        uses = [VInstr("add", rd=v(n + i), rs1=v(i), rs2=v(i + 1))
                for i in range(n - 1)]
        instrs = defs + uses
        with pytest.raises(CompileError, match="register pressure"):
            allocate(instrs, xloop_regions=[(0, len(instrs) - 1)])

    def test_spilled_code_still_consistent(self):
        # rewritten instructions keep their shape (rd/rs fields filled)
        n = len(CALLER_POOL) + len(CALLEE_POOL) + len(ARG_POOL) + 2
        defs = [VInstr("li", rd=v(i), imm=i) for i in range(n)]
        uses = [VInstr("add", rd=v(n), rs1=v(0), rs2=v(i))
                for i in range(n)]
        res = allocate(defs + uses)
        rendered = [ins.render(res.mapping) for ins in res.instrs
                    if not ins.is_label]
        assert all(rendered)
