"""Fault injector and watchdog unit tests."""

import signal
import time

import pytest

from repro.eval import runner
from repro.kernels import get_kernel
from repro.resilience import (DeadlineExceeded, FaultInjector,
                              FaultSpec, deadline)
from repro.resilience.watchdog import alarm_capable
from repro.sim import LivelockError, Memory
from repro.uarch import SystemSimulator
from repro.verify import InvariantViolation

from repro.eval.configs import config

SCALE = "tiny"


def _sim(kernel, injector=None, max_cycles=None, verify=True):
    spec = get_kernel(kernel)
    compiled = runner._compiled(kernel, "xloops", True)
    workload = spec.workload(SCALE, 0)
    mem = Memory()
    args = workload.apply(mem)
    sim = SystemSimulator(compiled.program, config("io+x"), mem=mem,
                          verify=verify, injector=injector,
                          max_cycles=max_cycles)
    return sim, spec, args, workload, mem


class TestFaultInjector:
    def test_counting_injector_observes_events(self):
        counter = FaultInjector(None)
        sim, spec, args, workload, mem = _sim("dither-or", counter)
        sim.run(entry=spec.entry, args=args, mode="specialized")
        workload.check(mem)
        assert counter.events > 0

    def test_injector_forces_slow_path(self):
        sim, *_ = _sim("dither-or", FaultInjector(None), verify=False)
        assert sim.fast is False

    def test_cib_fault_detected_by_monitor(self):
        # find a trigger whose corruption the monitor reports as a
        # CIB-value violation: sweep the first publishes of an
        # ordered-register loop
        counter = FaultInjector(None)
        sim, spec, args, workload, mem = _sim("dither-or", counter)
        sim.run(entry=spec.entry, args=args, mode="specialized")
        detected = None
        for trigger in range(0, 40):
            inj = FaultInjector(FaultSpec(target="cib",
                                          trigger=trigger, bit=7))
            sim, spec, args, workload, mem = _sim("dither-or", inj)
            try:
                sim.run(entry=spec.entry, args=args,
                        mode="specialized")
            except InvariantViolation as exc:
                detected = exc
                break
        assert detected is not None
        assert detected.check in ("cib-value", "cib-order", "cib-stale",
                                  "boundary", "finalize", "memory")
        assert detected.cycle is not None

    def test_mivt_fault_detected(self):
        inj = FaultInjector(FaultSpec(target="mivt", trigger=0, bit=1))
        sim, spec, args, workload, mem = _sim("rgb2cmyk-uc", inj)
        with pytest.raises(InvariantViolation):
            sim.run(entry=spec.entry, args=args, mode="specialized")
        assert inj.record.fired
        assert "mivt" in inj.record.mutation

    def test_same_spec_is_deterministic(self):
        spec_ = FaultSpec(target="reg", trigger=5, lane=1, index=7,
                          bit=13)
        records = []
        for _ in range(2):
            inj = FaultInjector(spec_)
            sim, spec, args, workload, mem = _sim("stencil-orm", inj)
            try:
                sim.run(entry=spec.entry, args=args,
                        mode="specialized")
                outcome = ("done", mem.fingerprint())
            except Exception as exc:
                outcome = (type(exc).__name__, str(exc))
            records.append((inj.record.cycle, inj.record.mutation,
                            outcome))
        assert records[0] == records[1]

    def test_empty_target_falls_back_to_reg(self):
        # sgemm-uc is unordered-concurrent: no CIB channels exist, so
        # a cib fault must deterministically land on a register instead
        inj = FaultInjector(FaultSpec(target="cib", trigger=0, bit=3))
        sim, spec, args, workload, mem = _sim("sgemm-uc", inj)
        try:
            sim.run(entry=spec.entry, args=args, mode="specialized")
        except Exception:
            pass
        assert inj.record.fired
        assert inj.record.fell_back
        assert "x" in inj.record.mutation


class TestMaxCycles:
    def test_tight_budget_raises_livelock(self):
        sim, spec, args, workload, mem = _sim("dither-or",
                                              max_cycles=10)
        with pytest.raises(LivelockError):
            sim.run(entry=spec.entry, args=args, mode="specialized")

    def test_generous_budget_is_invisible(self):
        ref_sim, spec, args, workload, mem = _sim("dither-or")
        ref = ref_sim.run(entry=spec.entry, args=args,
                          mode="specialized")
        sim, spec, args, workload, mem = _sim("dither-or",
                                              max_cycles=10**9)
        result = sim.run(entry=spec.entry, args=args,
                         mode="specialized")
        workload.check(mem)
        assert result.cycles == ref.cycles

    def test_runner_forwards_max_cycles(self):
        runner.clear_cache(keep_disk=True)
        with pytest.raises(LivelockError):
            runner.run("dither-or", "io+x", mode="specialized",
                       scale=SCALE, use_disk_cache=False,
                       max_cycles=10)


class TestDeadline:
    def test_expires(self):
        if not alarm_capable():
            pytest.skip("no SIGALRM on this platform/thread")
        with pytest.raises(DeadlineExceeded):
            with deadline(0.05):
                time.sleep(2)

    def test_disarms_cleanly(self):
        if not alarm_capable():
            pytest.skip("no SIGALRM on this platform/thread")
        with deadline(5.0):
            pass
        # timer disarmed and handler restored: nothing fires later
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_zero_and_none_disable(self):
        with deadline(0):
            pass
        with deadline(None):
            pass
