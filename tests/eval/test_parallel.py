"""Parallel sweep executor and persistent-cache tests.

The determinism regression: a parallel sweep must produce
bit-identical :class:`KernelRun` records to a serial one, and a second
sweep over the same points must be served from the disk cache instead
of re-simulating.
"""

import dataclasses
import os

import pytest

from repro.eval import diskcache, runner
from repro.eval.parallel import (SweepExecutor, SweepPoint,
                                 baseline_point, sweep, table2_points)

KERNELS = ["sgemm-uc", "dither-or"]
SCALE = "tiny"


def _points():
    return table2_points(KERNELS, SCALE, 0)


def _snapshot(result):
    """Every KernelRun field as plain data (recurses into the events
    and LPSU-stats dataclasses), for exact comparison.  The
    ``backend_stats`` diagnostics are dropped: the counters are
    process-wide, so a serial sequence and a fresh worker legitimately
    disagree about them while every architectural field stays
    bit-identical."""
    data = dataclasses.asdict(result)
    data.pop("backend_stats", None)
    return data


@pytest.fixture(autouse=True)
def _scoped_cache_config():
    """Restore the module-level cache configuration these tests poke."""
    saved = (diskcache._dir_override, diskcache._force_disabled,
             os.environ.get(diskcache.ENV_CACHE_DIR),
             os.environ.get(diskcache.ENV_NO_CACHE))
    # these tests exercise the disk cache: force it on even under the
    # hermetic-CI REPRO_NO_CACHE=1 environment (restored below)
    os.environ.pop(diskcache.ENV_NO_CACHE, None)
    diskcache._force_disabled = False
    yield
    diskcache._dir_override, diskcache._force_disabled = saved[:2]
    for var, value in ((diskcache.ENV_CACHE_DIR, saved[2]),
                       (diskcache.ENV_NO_CACHE, saved[3])):
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value
    diskcache.reset_stats()
    runner.clear_cache(keep_disk=True)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        key = diskcache.cache_key("some", "content", 1)
        assert diskcache.load(key) is None
        assert diskcache.store(key, {"cycles": 42})
        assert diskcache.load(key) == {"cycles": 42}

    def test_corrupt_record_is_a_miss(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        key = diskcache.cache_key("corrupt")
        diskcache.store(key, [1, 2, 3])
        path = diskcache._record_path(key)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert diskcache.load(key) is None

    def test_no_cache_env_disables(self, tmp_path, monkeypatch):
        diskcache.configure(cache_dir=str(tmp_path))
        monkeypatch.setenv(diskcache.ENV_NO_CACHE, "1")
        key = diskcache.cache_key("gated")
        assert not diskcache.store(key, 1)
        monkeypatch.delenv(diskcache.ENV_NO_CACHE)
        assert diskcache.load(key) is None

    def test_clear_cache_keep_disk(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        runner.run(KERNELS[0], "io", mode="traditional", scale=SCALE)
        n_sim = runner.simulations
        runner.clear_cache(keep_disk=True)
        runner.run(KERNELS[0], "io", mode="traditional", scale=SCALE)
        assert runner.simulations == n_sim  # served from disk
        runner.clear_cache()               # wipes the disk records too
        runner.run(KERNELS[0], "io", mode="traditional", scale=SCALE)
        assert runner.simulations == n_sim + 1


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self, tmp_path):
        # serial reference, computed fresh
        diskcache.configure(cache_dir=str(tmp_path / "serial"))
        runner.clear_cache()
        reference = {}
        for pt in _points():
            r = runner.run(pt.kernel, pt.config, **pt.run_kwargs())
            reference[pt.memo_key()] = _snapshot(r)
        assert reference

        # same points, 4 worker processes, fresh memo + fresh disk
        diskcache.configure(cache_dir=str(tmp_path / "parallel"))
        runner.clear_cache()
        summary = sweep(_points(), jobs=4)
        assert summary.jobs == 4
        assert summary.misses == summary.points  # nothing was cached

        for pt in _points():
            r = runner.run(pt.kernel, pt.config, **pt.run_kwargs())
            assert _snapshot(r) == reference[pt.memo_key()], pt.label()

    def test_second_sweep_served_from_cache(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        first = sweep(_points(), jobs=4)
        assert first.misses == first.points

        runner.clear_cache(keep_disk=True)
        second = sweep(_points(), jobs=4)
        assert second.points == first.points
        assert second.hits >= 0.95 * second.points
        assert second.misses == 0

    def test_memo_prefill_skips_workers(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        sweep(_points(), jobs=1)
        n_sim = runner.simulations
        again = sweep(_points(), jobs=1)
        assert runner.simulations == n_sim
        assert again.hits == again.points


class TestExecutorSurface:
    def test_points_deduplicate(self):
        pts = [SweepPoint("sgemm-uc", "io", scale=SCALE)] * 3
        summary = SweepExecutor(jobs=1).run_points(pts)
        assert summary.points == 1

    def test_summary_render(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        summary = sweep([SweepPoint("sgemm-uc", "io", scale=SCALE)])
        text = summary.render(per_point=True)
        assert "1 points" in text and "sgemm-uc/io" in text

    def test_baseline_point_picks_serial_binary(self):
        pt = baseline_point("qsort-uc", "io+x", SCALE, 0)
        assert pt.config == "io"
        assert pt.binary in ("serial", "gp")

    def test_ad_hoc_config_points(self, tmp_path):
        from repro.eval.configs import ADAPTIVE, PRIMARY_LPSU
        from repro.uarch import IO, SystemConfig
        cfg = SystemConfig("adhoc", IO, lpsu=PRIMARY_LPSU,
                           adaptive=ADAPTIVE)
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        summary = sweep([SweepPoint("sgemm-uc", cfg,
                                    mode="specialized", scale=SCALE)])
        assert summary.points == 1
        r = runner.run("sgemm-uc", cfg, mode="specialized", scale=SCALE)
        assert r.config == "adhoc" and r.cycles > 0


class TestRunnerForwarding:
    def test_energy_efficiency_forwards_run_kwargs(self):
        # xi changes the executed binary, so the efficiency must move
        with_xi = runner.energy_efficiency(
            "rgb2cmyk-uc", "io+x", "specialized", scale=SCALE,
            xi_enabled=True)
        without = runner.energy_efficiency(
            "rgb2cmyk-uc", "io+x", "specialized", scale=SCALE,
            xi_enabled=False)
        assert with_xi > 0 and without > 0
        assert with_xi != without


class TestVerifiedRunsBypassCache:
    """runner.run(verify=True) must always simulate: a verified run is
    never served from the memo or the disk cache, and never writes
    either -- otherwise a cached unverified result would mask an
    InvariantViolation, or a verified result would shadow the normal
    key space."""

    POINT = dict(kernel_name="sgemm-uc", config_name="io+x",
                 mode="specialized", scale=SCALE)

    def test_never_served_and_never_stored(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        n0 = runner.simulations

        r1 = runner.run(verify=True, **self.POINT)
        assert runner.simulations == n0 + 1

        # the verified run left no memo/disk record: a normal run must
        # simulate from scratch ...
        r2 = runner.run(**self.POINT)
        assert runner.simulations == n0 + 2

        # ... and is now cached (memo hit),
        r3 = runner.run(**self.POINT)
        assert runner.simulations == n0 + 2

        # while verify=True keeps re-simulating despite the warm cache
        r4 = runner.run(verify=True, **self.POINT)
        assert runner.simulations == n0 + 3

        # every path reports the same bit-identical record
        assert _snapshot(r1) == _snapshot(r2) == _snapshot(r3) \
            == _snapshot(r4)

    def test_verified_run_skips_disk_cache_reads(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        runner.clear_cache()
        runner.run(**self.POINT)          # populates the disk cache
        runner.clear_cache(keep_disk=True)
        n = runner.simulations
        runner.run(verify=True, **self.POINT)
        assert runner.simulations == n + 1  # disk record not served
