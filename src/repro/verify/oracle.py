"""Serial golden oracle for one specialized xloop execution.

A :class:`SerialOracle` executes the loop the way traditional execution
would — the body instructions run through the functional-core semantics
(:func:`repro.sim.functional.execute`) in strict index order — against a
*shadow* clone of the architectural memory taken when the LPSU was
invoked.  The invariant monitor advances it one iteration at a time, in
lockstep with LPSU iteration retirement, and compares:

* register state at iteration boundaries (index, MIVs, CIRs),
* the per-iteration committed store/AMO stream (for LSQ patterns), and
* the final shadow memory against the real memory when the loop hands
  back to the GPP.

The oracle never touches the timing models, the cache, or the energy
counters, so attaching it cannot perturb cycles or statistics.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.functional import execute
from ..sim.memory import MASK32, to_s32

#: per-iteration instruction budget: a serial iteration exceeding this
#: means the shadow execution livelocked (a verifier bug, not a loop)
_ITER_GUARD = 2_000_000


class OracleError(Exception):
    """The shadow serial execution itself went wrong (bad body)."""


class SerialOracle:
    """Iteration-by-iteration serial execution of one xloop.

    Parameters
    ----------
    descriptor
        The :class:`~repro.uarch.descriptor.LoopDescriptor` the LPSU
        is executing.
    live_in_regs
        GPP register file at loop entry (copied).
    mem
        The shared architectural memory at loop entry (cloned).
    """

    def __init__(self, descriptor, live_in_regs, mem):
        self.d = descriptor
        self.regs = list(live_in_regs)
        self.mem = mem.clone()
        self.start_idx = to_s32(live_in_regs[descriptor.idx_reg])
        self.iterations = 0        # completed serial iterations
        self.exited = False        # an xloop.break left the loop
        self.running = True        # the xloop back-branch would be taken
        #: committed stores of the most recent iteration, as
        #: ("st"|"amo", addr, size, value) in program order
        self.store_log: List[Tuple[str, int, int, int]] = []
        #: registers the most recent iteration read before writing --
        #: exactly the registers whose value at the iteration boundary
        #: is architecturally observable (a register recomputed at body
        #: entry is dead there, so e.g. an inner loop's xi pointer can
        #: carry a bogus outer-loop MIVT claim harmlessly)
        self.read_first: set = set()
        #: registers written by the most recent iteration (drives the
        #: exit-register copy-back comparison for ``.de`` loops)
        self.last_written: set = set()
        #: union of read_first over every iteration run so far
        self.ever_read_first: set = set()

    # ------------------------------------------------------------------

    def would_iterate(self):
        """Would traditional execution run another iteration?"""
        d = self.d
        return (self.running and not self.exited
                and to_s32(self.regs[d.idx_reg])
                < to_s32(self.regs[d.bound_reg]))

    def run_iteration(self):
        """Execute one serial iteration; fills :attr:`store_log`.

        The caller must have checked :meth:`would_iterate`.
        """
        d = self.d
        regs, mem = self.regs, self.mem
        log = self.store_log
        log.clear()
        read_first = self.read_first
        read_first.clear()
        written = self.last_written
        written.clear()
        pc = d.body_start_pc
        steps = 0
        while d.body_start_pc <= pc < d.xloop_pc:
            instr = d.body[(pc - d.body_start_pc) >> 2]
            op = instr.op
            for s in instr.src_regs():
                if s and s not in written:
                    read_first.add(s)
            if op.is_store:
                # log the store before executing (value from the regs)
                addr = (regs[instr.rs1] + instr.imm) & MASK32
                size = {"sw": 4, "sh": 2, "sb": 1}[op.mnemonic]
                log.append(("st", addr, size, regs[instr.rs2] & MASK32))
            elif op.is_amo:
                log.append(("amo", regs[instr.rs1] & MASK32, 4,
                            regs[instr.rs2] & MASK32))
            pc, _addr, _taken = execute(instr, regs, mem, pc)
            dst = instr.dst_reg()
            if dst:
                written.add(dst)
            steps += 1
            if steps > _ITER_GUARD:
                raise OracleError("serial iteration exceeded %d steps"
                                  % _ITER_GUARD)
        if pc == d.xloop_pc:
            # iteration fell through to the xloop test
            self.running = (to_s32(regs[d.idx_reg])
                            < to_s32(regs[d.bound_reg]))
        elif pc == d.xloop_pc + 4:
            # xloop.break targets the xloop fall-through (checked by
            # the scan phase), terminating the loop
            self.exited = True
            self.running = False
        else:
            raise OracleError(
                "serial execution left the loop body at pc=0x%x" % pc)
        self.iterations += 1
        self.ever_read_first |= read_first
        return log

    def reg(self, r):
        """Canonical u32 value of shadow register *r*."""
        return self.regs[r] & MASK32
