import pytest

from repro.isa import registers as R


def test_canonical_names_roundtrip():
    for i in range(R.NUM_REGS):
        assert R.reg_num("x%d" % i) == i
        assert R.reg_num(R.reg_name(i)) == i
        assert R.reg_num(R.reg_name(i, abi=False)) == i


def test_abi_aliases():
    assert R.reg_num("zero") == 0
    assert R.reg_num("ra") == 1
    assert R.reg_num("sp") == 2
    assert R.reg_num("fp") == 8
    assert R.reg_num("s0") == 8
    assert R.reg_num("a0") == 10
    assert R.reg_num("a7") == 17
    assert R.reg_num("t6") == 31


def test_case_and_whitespace_tolerant():
    assert R.reg_num(" A0 ") == 10
    assert R.reg_num("T0") == 5


def test_unknown_register_raises():
    with pytest.raises(R.RegisterError):
        R.reg_num("x32")
    with pytest.raises(R.RegisterError):
        R.reg_num("r5")
    with pytest.raises(R.RegisterError):
        R.reg_name(32)


def test_is_reg():
    assert R.is_reg("t3")
    assert not R.is_reg("banana")


def test_register_classes_disjoint_and_allocatable():
    assert set(R.CALLER_SAVED).isdisjoint(R.CALLEE_SAVED)
    assert R.ZERO not in R.ALLOCATABLE
    assert R.RA not in R.ALLOCATABLE
    assert R.SP not in R.ALLOCATABLE
    assert set(R.ARG_REGS) <= set(R.ALLOCATABLE)
