"""Deterministic single-fault injection into LPSU architectural state.

A :class:`FaultInjector` rides the LPSU's observer-hook interface (the
same pure-observer channel :class:`repro.verify.InvariantMonitor`
uses): every hook event increments a global event counter, and when
the counter reaches the planned trigger the injector flips one bit in
one piece of live machine state.  Because the LPSU's schedule is fully
deterministic and an attached observer forces the interpreted slow
path, "the N-th observer event" identifies one exact (cycle, lane)
point in the run -- the same point every time, which is what makes a
seeded campaign reproducible.

Targets (``FaultSpec.target``):

``reg``
    One bit of one register in one lane's register file.
``cib``
    One bit of a value sitting in a cross-iteration-buffer channel.
``lsq``
    One bit of a buffered (not yet committed) store's value in a
    lane's load-store queue.
``mivt``
    One bit of a mutual-induction-variable table increment (corrupts
    every subsequent iteration's MIV initialization).
``mem``
    One bit of one byte of architectural memory.

Selectors (``lane``, ``index``, ``offset``) are taken modulo whatever
is live at the trigger point, so any random spec lands on *something*;
targets with no live state at the trigger (an empty CIB, no buffered
stores, an empty MIVT) deterministically fall back to a register
fault, recorded as such.

Injection happens *after* the triggering event is forwarded to the
wrapped monitor, so the monitor observes a pristine prefix and the
fault manifests from the following event on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.memory import MASK32, PAGE_SIZE

#: the injectable state classes, in stable order (campaign planning
#: indexes into this)
FAULT_TARGETS = ("reg", "cib", "lsq", "mivt", "mem")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *where* and *when* to flip a bit."""

    target: str          # one of FAULT_TARGETS
    trigger: int = 0     # fire on the trigger-th observer event (0-based)
    lane: int = 0        # lane selector (modulo live contexts)
    index: int = 0       # per-target selector (register/channel/entry)
    bit: int = 0         # bit to flip (modulo the field's width)
    offset: int = 0      # byte offset inside the page (mem target)

    def describe(self):
        return ("%s@event%d lane%d idx%d bit%d off%d"
                % (self.target, self.trigger, self.lane, self.index,
                   self.bit, self.offset))


@dataclass
class InjectionRecord:
    """What actually happened when (and if) the fault fired."""

    spec: FaultSpec
    fired: bool = False
    cycle: int = -1          # LPSU cycle of the triggering event
    event: int = -1          # observer-event ordinal that triggered
    mutation: str = ""       # human-readable description of the flip
    fell_back: bool = False  # planned target was empty; hit a reg


class FaultInjector:
    """Counts observer events and fires one :class:`FaultSpec`.

    ``FaultInjector(None)`` never injects -- it is the profiler the
    campaign uses to measure a clean run's total observer-event count
    (the trigger space for planning).

    The injector survives across specialized invocations of one
    simulation: :meth:`bind` is called per invocation by
    :class:`~repro.uarch.system.SystemSimulator` and returns the hook
    object the LPSU drives; the event counter is cumulative so a
    trigger can land in any invocation.
    """

    def __init__(self, spec):
        self.spec = spec
        self.events = 0
        self.record = InjectionRecord(spec) if spec is not None else None
        self._lpsu = None

    # -- SystemSimulator wiring -----------------------------------------

    def bind(self, desc, regs, mem, monitor):
        """New specialized invocation: wrap *monitor* (may be None)."""
        return _InjectorHook(self, monitor)

    def attach(self, lpsu):
        """The LPSU instance whose state the fault will corrupt."""
        self._lpsu = lpsu

    # -- called by the hook on every observer event ----------------------

    def _event(self, cycle):
        ordinal = self.events
        self.events += 1
        if (self.spec is not None and not self.record.fired
                and ordinal == self.spec.trigger):
            self._fire(ordinal, cycle)

    def _fire(self, ordinal, cycle):
        rec = self.record
        rec.fired = True
        rec.event = ordinal
        rec.cycle = cycle
        lpsu = self._lpsu
        if lpsu is None:  # pragma: no cover - attach() always precedes run
            rec.mutation = "no LPSU attached"
            return
        spec = self.spec
        mutation = self._mutate(lpsu, spec)
        if mutation is None:
            # planned target has no live state here; a register fault
            # is always possible, so the injection still lands
            rec.fell_back = True
            mutation = self._mutate_reg(lpsu, spec)
        rec.mutation = mutation

    # -- the actual state corruption -------------------------------------
    # Deliberately whitebox: reaches into the LPSU's internal structures
    # exactly because the point is corrupting live machine state the
    # architectural interfaces would never let us touch.

    def _mutate(self, lpsu, spec):
        if spec.target == "reg":
            return self._mutate_reg(lpsu, spec)
        if spec.target == "cib":
            return self._mutate_cib(lpsu, spec)
        if spec.target == "lsq":
            return self._mutate_lsq(lpsu, spec)
        if spec.target == "mivt":
            return self._mutate_mivt(lpsu, spec)
        if spec.target == "mem":
            return self._mutate_mem(lpsu, spec)
        raise ValueError("unknown fault target %r" % spec.target)

    def _mutate_reg(self, lpsu, spec):
        ctx = lpsu.contexts[spec.lane % len(lpsu.contexts)]
        reg = 1 + spec.index % 31        # x0 is not interesting state
        mask = 1 << (spec.bit % 32)
        ctx.regs[reg] = (ctx.regs[reg] ^ mask) & MASK32
        return "lane%d x%d ^= 1<<%d" % (ctx.lane_id, reg, spec.bit % 32)

    def _mutate_cib(self, lpsu, spec):
        channels = sorted(lpsu._cib)
        if not channels:
            return None
        key = channels[spec.index % len(channels)]
        avail, value = lpsu._cib[key]
        mask = 1 << (spec.bit % 32)
        lpsu._cib[key] = (avail, (value ^ mask) & MASK32)
        return ("cib(x%d,k%d) ^= 1<<%d" % (key[0], key[1],
                                           spec.bit % 32))

    def _mutate_lsq(self, lpsu, spec):
        n = len(lpsu.contexts)
        for probe in range(n):
            ctx = lpsu.contexts[(spec.lane + probe) % n]
            if ctx.store_buf:
                entry = ctx.store_buf[spec.index % len(ctx.store_buf)]
                width = 8 * entry.size
                mask = 1 << (spec.bit % width)
                entry.value ^= mask
                return ("lane%d lsq store 0x%x ^= 1<<%d"
                        % (ctx.lane_id, entry.addr, spec.bit % width))
        return None

    def _mutate_mivt(self, lpsu, spec):
        regs = sorted(lpsu.d.mivt)
        if not regs:
            return None
        entry = lpsu.d.mivt[regs[spec.index % len(regs)]]
        mask = 1 << (spec.bit % 32)
        entry.increment = (entry.increment ^ mask) & MASK32
        return "mivt x%d increment ^= 1<<%d" % (entry.reg, spec.bit % 32)

    def _mutate_mem(self, lpsu, spec):
        pages = sorted(lpsu.mem._pages)
        if not pages:
            return None
        key = pages[spec.index % len(pages)]
        page = lpsu.mem._pages[key]
        off = spec.offset % PAGE_SIZE
        page[off] ^= 1 << (spec.bit % 8)
        addr = (key * PAGE_SIZE) + off
        return "mem[0x%x] ^= 1<<%d" % (addr, spec.bit % 8)


class _InjectorHook:
    """Observer-hook adapter: forwards every event to the wrapped
    monitor (when verification is on), then advances the injector's
    event clock.  Pure pass-through otherwise -- the LPSU treats it
    exactly like an InvariantMonitor."""

    def __init__(self, injector, monitor):
        self._inj = injector
        self._mon = monitor

    def on_begin(self, lane, k, cycle, regs):
        if self._mon is not None:
            self._mon.on_begin(lane, k, cycle, regs)
        self._inj._event(cycle)

    def on_cib_publish(self, lane, producer_k, cir, value, avail_cycle,
                       cycle):
        if self._mon is not None:
            self._mon.on_cib_publish(lane, producer_k, cir, value,
                                     avail_cycle, cycle)
        self._inj._event(cycle)

    def on_cib_consume(self, lane, k, cir, value, cycle):
        if self._mon is not None:
            self._mon.on_cib_consume(lane, k, cir, value, cycle)
        self._inj._event(cycle)

    def on_commit_store(self, lane, k, kind, addr, size, value, cycle):
        if self._mon is not None:
            self._mon.on_commit_store(lane, k, kind, addr, size, value,
                                      cycle)
        self._inj._event(cycle)

    def on_broadcast(self, lane, k, word, cycle):
        if self._mon is not None:
            self._mon.on_broadcast(lane, k, word, cycle)
        self._inj._event(cycle)

    def on_squash(self, lane, k, cycle, buffered_stores):
        if self._mon is not None:
            self._mon.on_squash(lane, k, cycle, buffered_stores)
        self._inj._event(cycle)

    def on_discard(self, lane, k, cycle):
        if self._mon is not None:
            self._mon.on_discard(lane, k, cycle)
        self._inj._event(cycle)

    def on_retire(self, lane, k, cycle, regs):
        if self._mon is not None:
            self._mon.on_retire(lane, k, cycle, regs)
        self._inj._event(cycle)

    def finalize(self, result):
        if self._mon is not None:
            self._mon.finalize(result)
