"""Differential conformance harness (the ``repro verify`` engine)."""

import pytest

from repro.verify import (ConformanceResult, check_case, check_kernel,
                          run_conformance)
from repro.verify.genloops import LPSU_SWEEP, random_cases

#: one representative per dependence pattern + both control extensions
REPRESENTATIVES = ("rgb2cmyk-uc", "sha-or", "ksack-sm-om", "mm-orm",
                   "btree-ua", "qsort-uc-db", "ssearch-de")


class TestCheckKernel:
    @pytest.mark.parametrize("name", REPRESENTATIVES)
    def test_representative_kernels_conform(self, name):
        res = check_kernel(name, scale="tiny")
        assert res.ok, res.detail
        # every sweep config plus the adaptive point actually ran
        assert res.configs == len(LPSU_SWEEP) + 1
        assert res.invocations > 0
        assert res.iterations > 0

    def test_unknown_kernel_is_a_failure_not_a_crash(self):
        res = check_kernel("no-such-kernel")
        assert not res.ok
        assert "no-such-kernel" in res.detail or res.detail

    def test_failure_detail_is_kept(self):
        res = ConformanceResult(name="x")
        res.fail("first")
        res.fail("second")
        assert not res.ok and res.detail == "first"


class TestCheckCase:
    def test_generated_cases_conform(self):
        for case in random_cases(seed=7, count=5):
            res = check_case(case)
            assert res.ok, "%s: %s" % (res.name, res.detail)

    def test_case_sweep_covers_all_families(self):
        kinds = set()
        for case in random_cases(seed=0, count=5):
            res = check_case(case, sweep=LPSU_SWEEP[:1])
            assert res.ok, res.detail
            kinds.update(res.kinds)
        assert any(k.startswith("xloop.uc") for k in kinds)
        assert any(k.startswith("xloop.or") for k in kinds)
        assert "xloop.om" in kinds
        assert "xloop.ua" in kinds
        assert any(k.endswith(".de") for k in kinds)


class TestRunConformance:
    def test_subset_sweep_with_progress(self):
        seen = []
        results = run_conformance(kernels=["sha-or", "btree-ua"],
                                  gen=2, seed=3,
                                  progress=seen.append)
        assert len(results) == 4 == len(seen)
        assert all(r.ok for r in results), \
            [(r.name, r.detail) for r in results if not r.ok]
