"""Table IV reproduction: application case studies — hand-optimized
xloop.or kernels and loop transformations, speedups on io+x, ooo/2+x,
ooo/4+x (specialized execution, normalized to the GP baseline on the
corresponding GPP)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..kernels import TABLE4_KERNELS, get_kernel
from .configs import XLOOPS_NAMES
from .report import render_table
from .runner import speedup


@dataclass
class Table4Row:
    kernel: str
    loop_type: str
    speedups: Dict[str, float]


def build_table4(kernels=None, scale="small", seed=0,
                 configs=XLOOPS_NAMES, jobs=None):
    names = kernels or [k.name for k in TABLE4_KERNELS]
    from .parallel import sweep, table4_points
    sweep(table4_points(names, scale, seed, configs), jobs=jobs)
    rows = []
    for name in names:
        spec = get_kernel(name)
        rows.append(Table4Row(
            kernel=name, loop_type=spec.dominant,
            speedups={cfg: speedup(name, cfg, "specialized",
                                   scale=scale, seed=seed)
                      for cfg in configs}))
    return rows


def render_table4(rows, configs=XLOOPS_NAMES):
    headers = ["Kernel", "Type"] + list(configs)
    body = [[r.kernel, r.loop_type]
            + ["%.2f" % r.speedups[c] for c in configs]
            for r in rows]
    return render_table(headers, body,
                        title="Table IV: case study results "
                              "(specialized execution)")


def opt_improvements(scale="small", seed=0, jobs=None):
    """Speedup of each hand-optimized or-kernel over its baseline on
    io+x (paper: 50-70% boosts)."""
    pairs = (("adpcm-or", "adpcm-or-opt"),
             ("dither-or", "dither-or-opt"),
             ("sha-or", "sha-or-opt"))
    from .parallel import SweepPoint, baseline_point, sweep
    points = []
    for name in (n for pair in pairs for n in pair):
        points.append(baseline_point(name, "io+x", scale, seed))
        points.append(SweepPoint(name, "io+x", mode="specialized",
                                 scale=scale, seed=seed))
    sweep(points, jobs=jobs)
    out = {}
    for base, opt in pairs:
        b = speedup(base, "io+x", "specialized", scale=scale, seed=seed)
        o = speedup(opt, "io+x", "specialized", scale=scale, seed=seed)
        out[opt] = o / b
    return out
