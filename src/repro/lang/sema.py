"""Semantic analysis for MiniC: scoped symbol resolution and type
checking.  Annotates the AST in place (``Var.symbol``, ``Expr.type``)
for the dependence analysis and code generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ast_nodes import (AddrOf, Assign, Binary, Break, Call, Cast, CHAR,
                        Continue, Decl, Expr, ExprStmt, FLOAT, FloatLit,
                        For, Function, If, Index, INT, IntLit, Return,
                        Type, Unary, Unit, Var, VOID, While)
from .lexer import CompileError

#: builtins: name -> (param types or None for AMO pointer, return type)
AMO_BUILTINS = {
    "amo_add": "amo.add", "amo_and": "amo.and", "amo_or": "amo.or",
    "amo_xor": "amo.xor", "amo_min": "amo.min", "amo_max": "amo.max",
    "amo_xchg": "amo.xchg",
}
FLOAT_BUILTINS = {"sqrtf": 1}

_ARITH_OPS = frozenset("+-*/%")
_BITWISE_OPS = frozenset({"&", "|", "^", "<<", ">>"})
_COMPARE_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})
_LOGICAL_OPS = frozenset({"&&", "||"})


@dataclass
class Symbol:
    """One resolved variable."""

    name: str
    type: Type
    sid: int
    is_param: bool = False
    is_array: bool = False
    array_size: int = 0

    @property
    def in_register(self):
        """Scalars live in registers; local arrays live on the stack."""
        return not self.is_array

    def __hash__(self):
        return self.sid

    def __eq__(self, other):
        return isinstance(other, Symbol) and self.sid == other.sid


class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, symbol, line):
        if symbol.name in self.names:
            raise CompileError("redeclaration of %r" % symbol.name, line)
        self.names[symbol.name] = symbol


class Sema:
    """Run semantic analysis over a :class:`Unit`."""

    def __init__(self, unit):
        self.unit = unit
        self._next_sid = 0
        self._functions = {f.name: f for f in unit.functions}
        self.symbols_of: Dict[str, List[Symbol]] = {}

    def run(self):
        for func in self.unit.functions:
            self._function(func)
        return self.unit

    # ------------------------------------------------------------------

    def _new_symbol(self, name, ty, **kw):
        sym = Symbol(name, ty, self._next_sid, **kw)
        self._next_sid += 1
        return sym

    def _function(self, func):
        scope = _Scope()
        self._current = func
        self._fn_symbols: List[Symbol] = []
        if len(func.params) > 8:
            raise CompileError("more than 8 parameters", func.line)
        for p in func.params:
            sym = self._new_symbol(p.name, p.type, is_param=True)
            scope.declare(sym, func.line)
            self._fn_symbols.append(sym)
        self._stmts(func.body, scope)
        self.symbols_of[func.name] = self._fn_symbols

    def _stmts(self, stmts, scope):
        inner = _Scope(scope)
        for stmt in stmts:
            self._stmt(stmt, inner)

    def _stmt(self, stmt, scope):
        if isinstance(stmt, Decl):
            self._decl(stmt, scope)
        elif isinstance(stmt, Assign):
            self._assign(stmt, scope)
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, If):
            self._cond(stmt.cond, scope, stmt.line)
            self._stmts(stmt.then, scope)
            self._stmts(stmt.orelse, scope)
        elif isinstance(stmt, While):
            self._cond(stmt.cond, scope, stmt.line)
            self._stmts(stmt.body, scope)
        elif isinstance(stmt, For):
            loop_scope = _Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, loop_scope)
            if stmt.cond is not None:
                self._cond(stmt.cond, loop_scope, stmt.line)
            body_scope = _Scope(loop_scope)
            for s in stmt.body:
                self._stmt(s, body_scope)
            if stmt.step is not None:
                self._stmt(stmt.step, loop_scope)
        elif isinstance(stmt, Return):
            rt = self._current.return_type
            if stmt.value is None:
                if rt != VOID:
                    raise CompileError("missing return value", stmt.line)
            else:
                vt = self._expr(stmt.value, scope)
                self._check_compatible(rt, vt, stmt.line, "return")
        elif isinstance(stmt, (Break, Continue)):
            pass
        else:  # pragma: no cover
            raise CompileError("unknown statement %r" % stmt, stmt.line)

    def _decl(self, stmt, scope):
        if stmt.array_size is not None:
            if stmt.type.is_pointer:
                raise CompileError("array of pointers unsupported",
                                   stmt.line)
            sym = self._new_symbol(stmt.name, Type(stmt.type.base, 1),
                                   is_array=True,
                                   array_size=stmt.array_size)
        else:
            sym = self._new_symbol(stmt.name, stmt.type)
            if stmt.init is not None:
                it = self._expr(stmt.init, scope)
                self._coerce_literal(stmt, "init", stmt.type, it)
                self._check_compatible(stmt.type,
                                       stmt.init.type, stmt.line, "init")
        scope.declare(sym, stmt.line)
        stmt.symbol = sym
        self._fn_symbols.append(sym)

    def _assign(self, stmt, scope):
        tt = self._lvalue(stmt.target, scope)
        vt = self._expr(stmt.value, scope)
        self._coerce_literal(stmt, "value", tt, vt)
        self._check_compatible(tt, stmt.value.type, stmt.line,
                               "assignment")

    def _lvalue(self, expr, scope):
        if isinstance(expr, Var):
            ty = self._expr(expr, scope)
            sym = expr.symbol
            if sym.is_array:
                raise CompileError("cannot assign to array %r" % sym.name,
                                   expr.line)
            return ty
        if isinstance(expr, Index):
            return self._expr(expr, scope)
        raise CompileError("invalid assignment target", expr.line)

    # -- expressions --------------------------------------------------------

    def _cond(self, expr, scope, line):
        if expr is None:
            raise CompileError("missing condition", line)
        ty = self._expr(expr, scope)
        if ty == FLOAT:
            raise CompileError("condition must be integer "
                               "(compare floats explicitly)", line)

    def _coerce_literal(self, owner, attr, target_ty, value_ty):
        """Allow `float x = 0;` style integer literals in float slots."""
        node = getattr(owner, attr)
        if (target_ty == FLOAT and isinstance(node, IntLit)):
            new = FloatLit(line=node.line, value=float(node.value))
            new.type = FLOAT
            setattr(owner, attr, new)

    def _check_compatible(self, expected, got, line, what):
        if expected == got:
            return
        # char and int interconvert freely (loads widen, stores truncate)
        ints = (INT, CHAR)
        if expected in ints and got in ints:
            return
        raise CompileError("%s type mismatch: expected %s, got %s"
                           % (what, expected, got), line)

    def _expr(self, expr, scope):
        ty = self._expr_inner(expr, scope)
        expr.type = ty
        return ty

    def _expr_inner(self, expr, scope):
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return FLOAT
        if isinstance(expr, Var):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise CompileError("undeclared variable %r" % expr.name,
                                   expr.line)
            expr.symbol = sym
            return sym.type
        if isinstance(expr, Index):
            bt = self._expr(expr.base, scope)
            if not bt.is_pointer:
                raise CompileError("indexing non-pointer %s" % bt,
                                   expr.line)
            st = self._expr(expr.subscript, scope)
            if st == FLOAT:
                raise CompileError("array subscript must be integer",
                                   expr.line)
            elem = bt.deref()
            return INT if elem == CHAR else elem
        if isinstance(expr, Unary):
            ot = self._expr(expr.operand, scope)
            if expr.op == "-":
                return ot
            if ot == FLOAT:
                raise CompileError("%r requires integer operand"
                                   % expr.op, expr.line)
            return INT
        if isinstance(expr, Cast):
            self._expr(expr.operand, scope)
            if expr.target == VOID or expr.target.is_pointer:
                raise CompileError("unsupported cast to %s"
                                   % expr.target, expr.line)
            return expr.target
        if isinstance(expr, Binary):
            return self._binary(expr, scope)
        if isinstance(expr, Call):
            return self._call(expr, scope)
        if isinstance(expr, AddrOf):
            raise CompileError("& only valid as an AMO builtin argument",
                               expr.line)
        raise CompileError("unknown expression %r" % expr,
                           expr.line)  # pragma: no cover

    def _binary(self, expr, scope):
        lt = self._expr(expr.left, scope)
        rt = self._expr(expr.right, scope)
        # literal coercion for mixed float/int-literal arithmetic
        if lt == FLOAT and isinstance(expr.right, IntLit):
            self._coerce_literal(expr, "right", FLOAT, rt)
            rt = FLOAT
        if rt == FLOAT and isinstance(expr.left, IntLit):
            self._coerce_literal(expr, "left", FLOAT, lt)
            lt = FLOAT
        op = expr.op
        if op in _LOGICAL_OPS:
            if FLOAT in (lt, rt):
                raise CompileError("logical ops require integers",
                                   expr.line)
            return INT
        if FLOAT in (lt, rt):
            if lt != rt:
                raise CompileError(
                    "mixed int/float arithmetic needs an explicit cast",
                    expr.line)
            if op in _BITWISE_OPS or op == "%":
                raise CompileError("%r undefined for float" % op,
                                   expr.line)
            return INT if op in _COMPARE_OPS else FLOAT
        return INT

    def _call(self, expr, scope):
        name = expr.name
        if name in AMO_BUILTINS:
            if len(expr.args) != 2:
                raise CompileError("%s(ptr, value) takes 2 arguments"
                                   % name, expr.line)
            target = expr.args[0]
            if isinstance(target, AddrOf):
                inner = target.operand
                if not isinstance(inner, Index):
                    raise CompileError(
                        "AMO target must be &array[index]", expr.line)
                it = self._expr(inner, scope)
                if it == FLOAT or inner.base.type.deref() == CHAR:
                    raise CompileError("AMO target must be int memory",
                                       expr.line)
                target.type = inner.base.type
            else:
                tt = self._expr(target, scope)
                if not tt.is_pointer or tt.deref() != INT:
                    raise CompileError("AMO target must be an int*",
                                       expr.line)
            vt = self._expr(expr.args[1], scope)
            self._check_compatible(INT, vt, expr.line, name)
            return INT
        if name in FLOAT_BUILTINS:
            if len(expr.args) != FLOAT_BUILTINS[name]:
                raise CompileError("wrong arity for %s" % name, expr.line)
            for a in expr.args:
                if self._expr(a, scope) != FLOAT:
                    raise CompileError("%s requires float" % name,
                                       expr.line)
            return FLOAT
        func = self._functions.get(name)
        if func is None:
            raise CompileError("call to undefined function %r" % name,
                               expr.line)
        if len(expr.args) != len(func.params):
            raise CompileError(
                "%s expects %d arguments, got %d"
                % (name, len(func.params), len(expr.args)), expr.line)
        for arg, param in zip(expr.args, func.params):
            at = self._expr(arg, scope)
            self._check_compatible(param.type, at, expr.line,
                                   "argument %r" % param.name)
        return func.return_type


def analyze(unit):
    """Run sema over *unit* (annotates in place; returns it)."""
    return Sema(unit).run()
