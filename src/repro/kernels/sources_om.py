"""Ordered-through-memory (xloop.om / orm) application kernels:
dynprog-om, knn-om, ksack-{sm,lg}-om, mm-orm, stencil-orm
(war-om lives with the war sources)."""

from __future__ import annotations

from .base import KernelSpec, Workload, region, rng_for, scale_select

# ---------------------------------------------------------------------------
# dynprog-om (PolyBench): chain DP -- c[j] = min over k<j of c[k]+w[k][j]
# ---------------------------------------------------------------------------

DYNPROG_SRC = """
void dynprog(int* w, int* c, int n) {
    c[0] = 0;
    #pragma xloops ordered
    for (int j = 1; j < n; j++) {
        int best = 1000000000;
        for (int k = 0; k < j; k++) {
            int v = c[k] + w[k*n+j];
            if (v < best) { best = v; }
        }
        c[j] = best;
    }
}
"""


def _dynprog_make(scale, seed):
    n = scale_select(scale, 8, 20, 40)
    rng = rng_for(seed, "dynprog")
    w = [rng.randrange(1, 50) for _ in range(n * n)]
    wa, ca = region(0), region(1)

    def init(mem):
        mem.write_words(wa, w)

    def verify(mem):
        c = [0] * n
        for j in range(1, n):
            c[j] = min(c[k] + w[k * n + j] for k in range(j))
        assert mem.read_words(ca, n) == c

    return Workload(args=[wa, ca, n], init=init, verify=verify)


DYNPROG = KernelSpec(
    name="dynprog-om", suite="Po", loop_types=("om",),
    source=DYNPROG_SRC, entry="dynprog", make=_dynprog_make,
    description="chain dynamic program over a cost table")

# ---------------------------------------------------------------------------
# knn-om (PBBS): maintain the k nearest neighbours of a query point in
# a sorted array updated in place (memory recurrence)
# ---------------------------------------------------------------------------

KNN_SRC = """
void knn(int* px, int* py, int* bestd, int* besti,
         int qx, int qy, int n, int k) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        int dx = px[i] - qx;
        int dy = py[i] - qy;
        int d = dx*dx + dy*dy;
        if (d < bestd[k-1]) {
            int j = k - 1;
            while (j > 0 && bestd[j-1] > d) {
                bestd[j] = bestd[j-1];
                besti[j] = besti[j-1];
                j = j - 1;
            }
            bestd[j] = d;
            besti[j] = i;
        }
    }
}
"""


def _knn_make(scale, seed):
    n = scale_select(scale, 20, 64, 256)
    k = 4
    rng = rng_for(seed, "knn")
    px = [rng.randrange(-100, 101) for _ in range(n)]
    py = [rng.randrange(-100, 101) for _ in range(n)]
    qx, qy = 7, -3
    pxa, pya, da, ia = region(0), region(1), region(2), region(3)
    BIG = 10 ** 9

    def init(mem):
        mem.write_words(pxa, [v & 0xFFFFFFFF for v in px])
        mem.write_words(pya, [v & 0xFFFFFFFF for v in py])
        mem.write_words(da, [BIG] * k)
        mem.write_words(ia, [0xFFFFFFFF] * k)

    def verify(mem):
        dists = sorted((
            ((px[i] - qx) ** 2 + (py[i] - qy) ** 2, i)
            for i in range(n)))
        # serial insertion keeps the first-seen point on ties, which
        # sorted() with (d, i) also does
        expect_d = [d for d, _ in dists[:k]]
        got_d = mem.read_words(da, k)
        assert got_d == expect_d, (got_d, expect_d)

    return Workload(args=[pxa, pya, da, ia, qx & 0xFFFFFFFF,
                          qy & 0xFFFFFFFF, n, k],
                    init=init, verify=verify)


KNN = KernelSpec(
    name="knn-om", suite="P", loop_types=("om", "uc"),
    source=KNN_SRC, entry="knn", make=_knn_make,
    description="k nearest neighbours via in-place sorted insertion")

# ---------------------------------------------------------------------------
# ksack-sm-om / ksack-lg-om: unbounded knapsack DP.  Small weights make
# nearby iterations touch the same dp entries -> memory-dependence
# violations and squashes; large weights mostly avoid them (paper IV-C).
# ---------------------------------------------------------------------------

# Item weights/values are scalar parameters (the invariant table loads
# are hoisted, as a production compiler would): the dependence distance
# between iterations equals the item weights, so small weights make
# nearby concurrent iterations conflict while large weights do not.
KSACK_SRC = """
void ksack(int* dp, int cap, int w0, int v0, int w1, int v1) {
    #pragma xloops ordered
    for (int c = 1; c < cap; c++) {
        int best = 0;
        if (w0 <= c) {
            int t = dp[c-w0] + v0;
            if (t > best) { best = t; }
        }
        if (w1 <= c) {
            int t = dp[c-w1] + v1;
            if (t > best) { best = t; }
        }
        dp[c] = best;
    }
}
"""


def _ksack_make(weights):
    def make(scale, seed):
        cap = scale_select(scale, 24, 96, 384)
        rng = rng_for(seed, "ksack")
        (w0, w1) = weights
        v0 = w0 * 3 + rng.randrange(1, 3)
        v1 = w1 * 3 + rng.randrange(1, 3)
        da = region(0)

        def init(mem):
            pass

        def verify(mem):
            dp = [0] * cap
            for c in range(1, cap):
                best = 0
                for w, v in ((w0, v0), (w1, v1)):
                    if w <= c:
                        best = max(best, dp[c - w] + v)
                dp[c] = best
            assert mem.read_words(da, cap) == dp

        return Workload(args=[da, cap, w0, v0, w1, v1],
                        init=init, verify=verify)
    return make


KSACK_SM = KernelSpec(
    name="ksack-sm-om", suite="C", loop_types=("om",),
    source=KSACK_SRC, entry="ksack",
    make=_ksack_make((3, 5)),
    description="unbounded knapsack, small weights (conflict-heavy)")

KSACK_LG = KernelSpec(
    name="ksack-lg-om", suite="C", loop_types=("om",),
    source=KSACK_SRC, entry="ksack",
    make=_ksack_make((11, 13)),
    description="unbounded knapsack, large weights (conflict-light)")

# ---------------------------------------------------------------------------
# mm-orm (PBBS, paper Fig 3): greedy maximal matching
# ---------------------------------------------------------------------------

MM_SRC = """
void mm(int* ev, int* eu, int* vertices, int* out, int m) {
    int k = 0;
    #pragma xloops ordered
    for (int i = 0; i < m; i++) {
        int v = ev[i];
        int u = eu[i];
        if (vertices[v] < 0) {
            if (vertices[u] < 0) {
                vertices[v] = u;
                vertices[u] = v;
                out[k] = i;
                k = k + 1;
            }
        }
    }
    out[m] = k;
}
"""


def _mm_make(scale, seed):
    nv = scale_select(scale, 12, 32)
    m = scale_select(scale, 20, 64)
    rng = rng_for(seed, "mm")
    edges = []
    while len(edges) < m:
        v, u = rng.randrange(nv), rng.randrange(nv)
        if v != u:
            edges.append((v, u))
    eva, eua, va, oa = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_words(eva, [e[0] for e in edges])
        mem.write_words(eua, [e[1] for e in edges])
        mem.write_words(va, [0xFFFFFFFF] * nv)  # -1

    def verify(mem):
        vertices = [-1] * nv
        matched, k = [], 0
        for i, (v, u) in enumerate(edges):
            if vertices[v] < 0 and vertices[u] < 0:
                vertices[v] = u
                vertices[u] = v
                matched.append(i)
                k += 1
        assert mem.load_word(oa + 4 * m) == k
        assert mem.read_words(oa, k) == matched
        got_v = mem.read_words_signed(va, nv)
        assert got_v == vertices

    return Workload(args=[eva, eua, va, oa, m], init=init, verify=verify)


MM = KernelSpec(
    name="mm-orm", suite="P", loop_types=("orm", "uc"),
    source=MM_SRC, entry="mm", make=_mm_make,
    description="greedy maximal matching (paper Fig 3)")

# ---------------------------------------------------------------------------
# stencil-orm: in-place 3-point smoothing with a running checksum CIR
# ---------------------------------------------------------------------------

STENCIL_SRC = """
void stencil(int* a, int* chk, int n, int reps) {
    for (int r = 0; r < reps; r++) {
        int sum = 0;
        #pragma xloops ordered
        for (int i = 1; i < n; i++) {
            int left = a[i-1];
            int mid = a[i];
            int right = a[i+1];
            int v = (left + 2*mid + right) / 4;
            a[i] = v;
            sum = sum + v;
        }
        chk[r] = sum;
    }
}
"""


def _stencil_make(scale, seed):
    n = scale_select(scale, 20, 64)
    reps = scale_select(scale, 2, 4)
    rng = rng_for(seed, "stencil")
    a = [rng.randrange(0, 256) for _ in range(n + 1)]
    aa, ca = region(0), region(1)

    def init(mem):
        mem.write_words(aa, a)

    def verify(mem):
        arr = list(a)
        chk = []
        for _ in range(reps):
            total = 0
            for i in range(1, n):
                v = (arr[i - 1] + 2 * arr[i] + arr[i + 1]) // 4
                arr[i] = v
                total += v
            chk.append(total)
        assert mem.read_words(aa, n + 1) == arr
        assert mem.read_words(ca, reps) == chk

    return Workload(args=[aa, ca, n, reps], init=init, verify=verify)


STENCIL = KernelSpec(
    name="stencil-orm", suite="P", loop_types=("orm", "uc"),
    source=STENCIL_SRC, entry="stencil", make=_stencil_make,
    description="in-place smoothing stencil + checksum CIR")

OM_KERNELS = (DYNPROG, KNN, KSACK_SM, KSACK_LG, MM, STENCIL)
