"""Dependence-analysis / pattern-selection tests — including the
paper's Fig 2 (war: nested om/uc) and Fig 3 (mm: orm) examples."""

import pytest

from repro.lang import CompileError, compile_source


def kinds(src):
    return compile_source(src).loop_kinds()


class TestAnnotationMapping:
    def test_unordered_maps_to_uc(self):
        assert kinds("""
void f(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = a[i]; }
}""") == ("xloop.uc",)

    def test_atomic_maps_to_ua(self):
        assert kinds("""
void f(int* d, int* h, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) { h[d[i]] = h[d[i]] + 1; }
}""") == ("xloop.ua",)

    def test_ordered_register_dep_maps_to_or(self):
        cp = compile_source("""
void f(int* a, int* b, int n) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { acc = acc + a[i]; b[i] = acc; }
}""")
        assert cp.loop_kinds() == ("xloop.or",)
        assert cp.loops[0].cirs == ("acc",)

    def test_ordered_memory_dep_maps_to_om(self):
        assert kinds("""
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 1; i < n; i++) { a[i] = a[i-1] + a[i]; }
}""") == ("xloop.om",)

    def test_ordered_both_maps_to_orm(self):
        assert kinds("""
void f(int* a, int* out, int n) {
    int k = 0;
    #pragma xloops ordered
    for (int i = 1; i < n; i++) {
        a[i] = a[i-1] + 1;
        out[k] = i;
        k = k + 1;
    }
}""") == ("xloop.orm",)

    def test_ordered_without_deps_relaxes_to_uc(self):
        # least-restrictive legal encoding (Section II-A)
        assert kinds("""
void f(int* a, int* b, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { b[i] = a[i] * 3; }
}""") == ("xloop.uc",)

    def test_dynamic_bound_suffix(self):
        cp = compile_source("""
void f(int* wl, int* tail, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int v = wl[i];
        if (v < 10) {
            int slot = amo_add(tail, 1);
            wl[slot] = v * 2 + 1;
            n = n + 1;
        }
    }
}""")
        assert cp.loop_kinds() == ("xloop.uc.db",)
        assert cp.loops[0].dynamic_bound


class TestPaperFigures:
    def test_fig2_war_nested_om_uc(self):
        """Floyd-Warshall: outer ordered loop -> om, inner -> uc."""
        cp = compile_source("""
void war(int* path, int n) {
    for (int k = 0; k < n; k++) {
        #pragma xloops ordered
        for (int i = 0; i < n; i++) {
            #pragma xloops unordered
            for (int j = 0; j < n; j++) {
                int through = path[i*n+k] + path[k*n+j];
                if (through < path[i*n+j]) { path[i*n+j] = through; }
            }
        }
    }
}""")
        assert cp.loop_kinds() == ("xloop.om", "xloop.uc")

    def test_fig3_mm_orm(self):
        """Maximal matching: data-dependent subscripts + a scalar
        output counter -> orm (register AND memory ordering)."""
        cp = compile_source("""
void mm(int* ev, int* eu, int* vertices, int* out, int m) {
    int k = 0;
    #pragma xloops ordered
    for (int i = 0; i < m; i++) {
        int v = ev[i];
        int u = eu[i];
        if (vertices[v] < 0) {
            if (vertices[u] < 0) {
                vertices[v] = u;
                vertices[u] = v;
                out[k] = i;
                k = k + 1;
            }
        }
    }
}""")
        assert cp.loop_kinds() == ("xloop.orm",)
        assert cp.loops[0].cirs == ("k",)


class TestSubscriptTests:
    def test_strong_siv_distinct_offsets_is_dep(self):
        assert kinds("""
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[i+1] = a[i]; }
}""") == ("xloop.om",)

    def test_siv_nonunit_stride_no_integer_solution(self):
        # a[2i] vs a[2i+1]: distance 1 not divisible by 2 -> no dep
        assert kinds("""
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[2*i] = a[2*i+1]; }
}""") == ("xloop.uc",)

    def test_ziv_invariant_location_is_dep(self):
        assert kinds("""
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[0] = a[0] + i; }
}""") == ("xloop.om",)

    def test_distinct_arrays_do_not_alias(self):
        assert kinds("""
void f(int* a, int* b, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { b[i] = a[i+1]; }
}""") == ("xloop.uc",)

    def test_data_dependent_subscript_conservative(self):
        assert kinds("""
void f(int* a, int* idx, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[idx[i]] = i; }
}""") == ("xloop.om",)

    def test_amo_does_not_force_om(self):
        # AMOs are atomic: they do not impose memory ordering
        assert kinds("""
void f(int* a, int* c, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { int old = amo_add(&c[0], a[i]); }
}""") == ("xloop.uc",)


class TestDiagnostics:
    def test_cir_in_unordered_rejected(self):
        with pytest.raises(CompileError, match="carry values across"):
            compile_source("""
void f(int* a, int n) {
    int acc = 0;
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { acc = acc + a[i]; }
}""")

    def test_live_out_temp_rejected(self):
        with pytest.raises(CompileError, match="undefined after"):
            compile_source("""
int f(int* a, int n) {
    int last = 0;
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { last = a[i]; }
    return last;
}""")

    def test_break_selects_data_dependent_exit(self):
        # the .de extension (the paper's future-work control pattern):
        # break inside an annotated loop selects the .de suffix
        cp = compile_source("""
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { if (a[i]) break; }
}""")
        assert cp.loop_kinds() == ("xloop.uc.de",)
        assert "xloop.break" in cp.asm_text

    def test_break_plus_dynamic_bound_rejected(self):
        with pytest.raises(CompileError, match="dynamic bound"):
            compile_source("""
void f(int* a, int* t, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        if (a[i] < 0) { break; }
        int s = amo_add(t, 1);
        a[s] = i;
        n = n + 1;
    }
}""")

    def test_break_in_nested_plain_loop_ok(self):
        compile_source("""
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int j = 0;
        while (j < 10) { if (a[j]) break; j++; }
        a[i] = j;
    }
}""")

    def test_return_rejected(self):
        with pytest.raises(CompileError, match="return"):
            compile_source("""
int f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { if (a[i]) return i; }
    return 0;
}""")

    def test_call_in_body_rejected(self):
        with pytest.raises(CompileError, match="self-contained"):
            compile_source("""
int g(int x) { return x; }
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { a[i] = g(i); }
}""")

    def test_noncanonical_step_rejected(self):
        with pytest.raises(CompileError, match="unit stride"):
            compile_source("""
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i += 2) { a[i] = 0; }
}""")

    def test_noncanonical_condition_rejected(self):
        with pytest.raises(CompileError, match="i < bound"):
            compile_source("""
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = n; i > 0; i++) { a[i] = 0; }
}""")
