"""CLI smoke tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main

DEMO = """
void scale(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = 3 * a[i] + 1; }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_isa(capsys):
    assert main(["isa"]) == 0
    out = capsys.readouterr().out
    assert "xloop.uc" in out and "addiu.xi" in out


def test_compile(demo_file, capsys):
    assert main(["compile", demo_file]) == 0
    captured = capsys.readouterr()
    assert "xloop.uc" in captured.out
    assert "xloop.uc" in captured.err   # loop report on stderr


def test_compile_gp_mode(demo_file, capsys):
    assert main(["compile", demo_file, "--gp"]) == 0
    out = capsys.readouterr().out
    assert "xloop" not in out
    assert "blt" in out


def test_compile_no_xi(demo_file, capsys):
    assert main(["compile", demo_file, "--no-xi"]) == 0
    assert ".xi" not in capsys.readouterr().out


def test_disasm(demo_file, capsys):
    assert main(["disasm", demo_file]) == 0
    out = capsys.readouterr().out
    assert "scale:" in out
    assert "00001000:" in out


def test_disasm_assembly_file(tmp_path, capsys):
    path = tmp_path / "tiny.s"
    path.write_text("main:\n addi a0, zero, 7\n ret\n")
    assert main(["disasm", str(path)]) == 0
    assert "addi" in capsys.readouterr().out


def test_run_specialized(demo_file, capsys):
    rc = main(["run", demo_file, "scale",
               "0x100000", "0x200000", "16",
               "--config", "io+x", "--mode", "specialized"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "specialized:" in out
    assert "cycles:" in out


def test_run_rejects_lpsu_mode_on_baseline(demo_file, capsys):
    rc = main(["run", demo_file, "scale", "0", "0", "0",
               "--config", "io", "--mode", "specialized"])
    assert rc == 2


def test_kernels_listing(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "sgemm-uc" in out and "bfs-uc-db" in out


def test_kernel_run(capsys):
    rc = main(["kernel", "sha-or", "--scale", "tiny",
               "--config", "io+x"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup:" in out
    assert "verified against the golden model: yes" in out


def test_table5(capsys):
    assert main(["table", "table5"]) == 0
    assert "lpsu+i128+ln4" in capsys.readouterr().out


def test_fig6_restricted_kernels(capsys):
    rc = main(["table", "fig6", "--scale", "tiny",
               "--kernels", "sha-or"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sha-or" in out


def test_compile_schedule_flag(tmp_path, capsys):
    path = tmp_path / "or.c"
    path.write_text("""
void k(int* g, int* out, int* nxt, int n) {
    int err = 0;
    #pragma xloops ordered
    for (int x = 0; x < n; x++) {
        int old = g[x] + err;
        out[x] = old;
        err = (old * 7) / 16;
    }
}
""")
    assert main(["compile", str(path), "--schedule"]) == 0
    out = capsys.readouterr().out
    assert "xloop.or" in out


def test_table3(capsys):
    assert main(["table", "table3"]) == 0
    out = capsys.readouterr().out
    assert "ooo/4" in out and "LPSU" in out


def test_verify_fast_slow(capsys):
    rc = main(["verify", "--fast-slow", "sha-or"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert "0 failed" in out


def test_verify_ladder(capsys):
    rc = main(["verify", "--ladder", "vvadd-uc", "sha-or"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert "0 failed" in out


def test_kernel_backend_flag(capsys):
    from repro.eval import runner
    try:
        assert main(["kernel", "vvadd-uc", "--scale", "tiny",
                     "--backend", "turbo"]) == 0
        turbo_out = capsys.readouterr().out
        runner.clear_cache(keep_disk=True)
        assert main(["kernel", "vvadd-uc", "--scale", "tiny",
                     "--backend", "interp"]) == 0
        assert capsys.readouterr().out == turbo_out
    finally:
        import os
        runner.set_default_backend("auto")
        os.environ.pop("REPRO_BACKEND", None)
        runner.clear_cache(keep_disk=True)


def test_kernel_no_fast_matches_fast(capsys):
    assert main(["kernel", "sha-or", "--scale", "tiny"]) == 0
    fast_out = capsys.readouterr().out
    from repro.eval import runner
    runner.clear_cache()
    try:
        rc = main(["kernel", "sha-or", "--scale", "tiny", "--no-fast"])
        assert rc == 0
        assert capsys.readouterr().out == fast_out
    finally:
        runner.set_default_fast(True)
        runner.clear_cache()


def test_cache_prune_requires_max_size(capsys):
    assert main(["cache", "prune"]) == 2
    assert "--max-size" in capsys.readouterr().err


def test_profile_prints_hotspots(capsys):
    rc = main(["profile", "sha-or", "--scale", "tiny", "--top", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sha-or on io+x" in out
    assert "cycles:" in out
    # pstats table with the requested restriction applied
    assert "cumtime" in out
    assert "due to restriction <5>" in out


def test_profile_backend_flag(capsys):
    rc = main(["profile", "vvadd-uc", "--scale", "tiny",
               "--backend", "turbo", "--top", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "backend=turbo" in out
    assert "cycles:" in out


def test_prove_named_kernels(capsys):
    assert main(["prove", "vvadd-uc", "war-uc", "hsort-ua"]) == 0
    out = capsys.readouterr().out
    assert "ok   vvadd-uc" in out
    assert "3 kernels proved, 0 failed, 0 whitelisted" in out


def test_prove_verbose_prints_certificates(capsys):
    assert main(["prove", "dynprog-om", "-v"]) == 0
    out = capsys.readouterr().out
    assert "xloop.om proved" in out
    assert "minimal" in out          # per-loop describe() line


def test_prove_fuzz_and_json(tmp_path, capsys):
    import json
    report = tmp_path / "proofs.json"
    assert main(["prove", "saxpy-uc", "--fuzz", "5", "--seed", "2",
                 "--json", str(report)]) == 0
    records = json.loads(report.read_text())
    assert records[0]["name"] == "saxpy-uc"
    assert records[0]["ok"] is True
    assert records[0]["loops"][0]["verdict"] == "proved"


def test_prove_replay_on_sound_kernels_is_noop(capsys):
    # no registered kernel is refuted, so --replay replays nothing
    assert main(["prove", "mm-orm", "--replay"]) == 0
    out = capsys.readouterr().out
    assert "counterexample replay" not in out


def test_compile_auto_annotate(tmp_path, capsys):
    path = tmp_path / "plain.c"
    path.write_text("""
void scale(int* a, int* b, int n) {
    for (int i = 0; i < n; i++) { b[i] = 3 * a[i] + 1; }
}
""")
    assert main(["compile", str(path), "--auto-annotate"]) == 0
    err = capsys.readouterr()
    assert "xloop.uc" in err.out + err.err


def test_run_auto_annotate(tmp_path, capsys):
    path = tmp_path / "plain.c"
    path.write_text("""
int total(int* a, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc = acc + a[i]; }
    return acc;
}
""")
    rc = main(["run", str(path), "total", "0x100000", "0",
               "--auto-annotate"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "return value:  0" in out


def test_worker_parser_flags():
    args = build_parser().parse_args(
        ["worker", "--connect", "/tmp/s.sock", "--jobs", "3",
         "--name", "w1", "--poll", "0.5"])
    assert args.connect == "/tmp/s.sock"
    assert args.jobs == 3 and args.name == "w1"
    assert args.poll == 0.5


def test_worker_requires_connect():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["worker"])


def test_serve_distributed_flags():
    args = build_parser().parse_args(
        ["serve", "--socket", "/tmp/s.sock", "--distributed",
         "--journal", "/tmp/q.journal", "--lease-ttl", "5",
         "--requeue-budget", "3", "--drain-timeout", "10"])
    assert args.distributed and args.journal == "/tmp/q.journal"
    assert args.lease_ttl == 5.0 and args.requeue_budget == 3
    assert args.drain_timeout == 10.0
    status = build_parser().parse_args(
        ["serve", "--status", "/tmp/s.sock", "--json"])
    assert status.status == "/tmp/s.sock" and status.json


def test_sweep_exact_accounting_flags():
    args = build_parser().parse_args(
        ["sweep", "table2", "--scale", "tiny",
         "--expect-sims-exact", "24", "--expect-points", "28"])
    assert args.expect_sims_exact == 24
    assert args.expect_points == 28


def test_serve_status_against_dead_socket(capsys):
    assert main(["serve", "--status", "/tmp/no-such-repro.sock"]) == 1
    err = capsys.readouterr().err
    assert "error" in err
