"""Microarchitectural configuration (paper Table III).

Three baseline GPPs — ``io`` (single-issue in-order), ``ooo/2`` (two-way
out-of-order), ``ooo/4`` (four-way out-of-order) — each optionally
augmented with a loop-pattern specialization unit (LPSU) to form
``io+x``, ``ooo/2+x`` and ``ooo/4+x``.  Design-space variants from
Fig 9 (``+t`` multithreading, ``x8`` lanes, ``+r`` doubled memory
ports/LLFUs, ``+m`` 16-entry LSQs) are expressed through
:class:`LPSUConfig` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..isa.instructions import FU


@dataclass(frozen=True)
class LatencyTable:
    """Functional-unit latencies in cycles (shared by every model)."""

    alu: int = 1
    br: int = 1
    mul: int = 4
    div: int = 12
    fpu: int = 4
    fdiv: int = 12
    load_hit: int = 2          # load-to-use on an L1 hit
    store: int = 1
    amo: int = 3
    miss_penalty: int = 20     # extra cycles on an L1 miss

    def for_fu(self, fu):
        return {
            FU.ALU: self.alu, FU.BR: self.br, FU.MUL: self.mul,
            FU.DIV: self.div, FU.FPU: self.fpu, FU.FDIV: self.fdiv,
            FU.MEM: self.load_hit, FU.XLOOP: self.br,
        }[fu]


@dataclass(frozen=True)
class CacheConfig:
    """L1 data cache (16 KB, 4-way, 32 B lines as in Section V)."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    ways: int = 4
    hit_latency: int = 2
    miss_latency: int = 20


@dataclass(frozen=True)
class GPPConfig:
    """A general-purpose processor baseline."""

    name: str
    kind: str                    # "io" | "ooo"
    width: int = 1               # fetch/issue/retire width
    rob_entries: int = 1
    mem_ports: int = 1
    llfus: int = 1
    mispredict_penalty: int = 3
    bpred_entries: int = 1024
    bpred_kind: str = "bimodal"      # "bimodal" | "gshare"
    latencies: LatencyTable = field(default_factory=LatencyTable)
    cache: CacheConfig = field(default_factory=CacheConfig)

    @property
    def is_ooo(self):
        return self.kind == "ooo"


@dataclass(frozen=True)
class LPSUConfig:
    """Loop-pattern specialization unit (paper Fig 4 + Section IV-F).

    The primary design is four in-order lanes, a 128-entry instruction
    buffer per lane, 8+8-entry LSQs, one shared memory port and one
    shared LLFU (``lpsu+i128+ln4`` in Table V terms).
    """

    lanes: int = 4
    ib_entries: int = 128        # loop instruction buffer per lane
    idq_entries: int = 4         # index queue entries per lane
    lsq_loads: int = 8           # LSQ load entries per lane
    lsq_stores: int = 8          # LSQ store entries per lane
    cib_entries: int = 4         # cross-iteration buffer entries
    mem_ports: int = 1           # shared with the GPP
    llfus: int = 1               # shared with the GPP
    threads_per_lane: int = 1    # 2 => vertical multithreading (+t)
    # paper II-D: "more aggressive implementations can additionally
    # allow a load to check the LSQs across lanes for inter-iteration
    # store-load forwarding" -- avoids squashes on tight recurrences
    inter_lane_forwarding: bool = False
    xi_enabled: bool = True      # False models the Section V RTL (no xi)
    scan_overhead: int = 4       # fixed cycles around the scan phase
    finish_overhead: int = 4     # LMU -> GPP completion handshake
    branch_penalty: int = 2      # taken-branch bubble inside a lane
    # Patterns eligible for specialized execution (an architect "can
    # choose to only support xloop.uc", Section II-A).
    specialize_patterns: Tuple[str, ...] = ("uc", "or", "om", "orm", "ua")

    def supports(self, data_pattern):
        return data_pattern.value in self.specialize_patterns


@dataclass(frozen=True)
class AdaptiveConfig:
    """Adaptive-execution profiling thresholds (Section IV-D)."""

    profile_iters: int = 256
    profile_cycles: int = 2000
    apt_entries: int = 16        # adaptive profiling table capacity
    migrate_overhead: int = 8    # CIR copy-back / restart cycles


@dataclass(frozen=True)
class SystemConfig:
    """A full platform: one GPP, optionally one LPSU."""

    name: str
    gpp: GPPConfig
    lpsu: Optional[LPSUConfig] = None
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)

    def with_lpsu(self, suffix="+x", **overrides):
        lpsu = LPSUConfig(**overrides) if self.lpsu is None else replace(
            self.lpsu, **overrides)
        return replace(self, name=self.name + suffix, lpsu=lpsu)


# --- the paper's named configurations --------------------------------------

IO = GPPConfig(name="io", kind="io", width=1, rob_entries=1,
               mem_ports=1, llfus=1, mispredict_penalty=3)

OOO2 = GPPConfig(name="ooo/2", kind="ooo", width=2, rob_entries=64,
                 mem_ports=1, llfus=1, mispredict_penalty=8)

OOO4 = GPPConfig(name="ooo/4", kind="ooo", width=4, rob_entries=128,
                 mem_ports=2, llfus=2, mispredict_penalty=10)


def baseline(name):
    return {"io": IO, "ooo/2": OOO2, "ooo/4": OOO4}[name]
