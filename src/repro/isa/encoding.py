"""32-bit binary encoding for the XLOOPS ISA.

We use a fixed, RISC-V-like field layout so that every instruction fits
in one 32-bit word and round-trips exactly:

    [31:22] opcode index (10 bits, dense index into the op table)
    [21:17] rd   (5 bits)
    [16:12] rs1  (5 bits)
    [11:7]  rs2  (5 bits)
    [6:0]   low immediate bits

Immediates wider than 7 bits use the *extended* encoding below.  This is
not the layout a real tape-out would use (a real design packs fields to
minimise mux cost), but it preserves the property Table I depends on:
``xloop`` and ``xi`` instructions are ordinary single-word instructions
that a traditional decoder can treat as branches/adds.

Because our ISA allows signed 16-bit immediates (loads/stores/addi) and
21-bit jump offsets, the encoder steals the rs2/rd fields when the
format does not need them:

=========  =====================================================
format     immediate bits
=========  =====================================================
R/R2/XI_R  none
I/LOAD/    imm[15:0] in bits [16:12]+[11:7]+[6:1]... -- we instead
STORE etc  place imm16 in bits [15:0] and move rs2 to [20:16]
=========  =====================================================

Concretely the layouts are:

* ``R``-class   : opcode[31:22] | rd[21:17] | rs1[16:12] | rs2[11:7] | 0
* ``I``-class   : opcode[31:22] | rd[21:17] | rs1[16:12] |  imm16 sign-
                  extended in [15:0]?  -- rd/rs1 overlap imm would clash,
                  so I-class uses opcode[31:22]|rd[21:17]|rs1[16:12] and
                  imm12 in [11:0].
* ``B/X``-class : opcode[31:22] | rs1[21:17] | rs2[16:12] | imm12 [11:0]
                  (byte offset / 2, since instructions are 4-byte aligned
                  we store offset>>1 for range)
* ``J``-class   : opcode[31:22] | rd[21:17] | imm17 [16:0] (offset>>1)
* ``U``-class   : opcode[31:22] | rd[21:17] | imm17 [16:0] (upper bits)

All immediates are stored two's-complement.
"""

from __future__ import annotations

from .instructions import OPS, Fmt, Instr

#: dense opcode numbering, stable across runs (sorted mnemonics)
OPCODE_OF = {m: i for i, m in enumerate(sorted(OPS))}
MNEMONIC_OF = {i: m for m, i in OPCODE_OF.items()}

_IMM12_MIN, _IMM12_MAX = -(1 << 11), (1 << 11) - 1
_IMM17_MIN, _IMM17_MAX = -(1 << 16), (1 << 16) - 1


class EncodingError(ValueError):
    """Raised when an instruction's fields do not fit its encoding."""


def _fit(value, lo, hi, what, instr):
    if not lo <= value <= hi:
        raise EncodingError(
            "%s %d out of range [%d, %d] in %r"
            % (what, value, lo, hi, instr.mnemonic))


def _mask(value, bits):
    return value & ((1 << bits) - 1)


def _sext(value, bits):
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def encode(instr):
    """Encode one :class:`Instr` into a 32-bit integer."""
    op = instr.op
    word = OPCODE_OF[op.mnemonic] << 22
    fmt = op.fmt
    if fmt in (Fmt.R, Fmt.XI_R, Fmt.AMO):
        word |= _mask(instr.rd, 5) << 17
        word |= _mask(instr.rs1, 5) << 12
        word |= _mask(instr.rs2, 5) << 7
    elif fmt == Fmt.R2:
        word |= _mask(instr.rd, 5) << 17
        word |= _mask(instr.rs1, 5) << 12
    elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.LOAD, Fmt.JALR, Fmt.XI_I):
        _fit(instr.imm, _IMM12_MIN, _IMM12_MAX, "imm12", instr)
        word |= _mask(instr.rd, 5) << 17
        word |= _mask(instr.rs1, 5) << 12
        word |= _mask(instr.imm, 12)
    elif fmt == Fmt.STORE:
        _fit(instr.imm, _IMM12_MIN, _IMM12_MAX, "imm12", instr)
        word |= _mask(instr.rs2, 5) << 17
        word |= _mask(instr.rs1, 5) << 12
        word |= _mask(instr.imm, 12)
    elif fmt in (Fmt.BRANCH, Fmt.XLOOP):
        if instr.imm % 2:
            raise EncodingError("branch offset must be even")
        off = instr.imm >> 1
        _fit(off, _IMM12_MIN, _IMM12_MAX, "branch offset/2", instr)
        word |= _mask(instr.rs1, 5) << 17
        word |= _mask(instr.rs2, 5) << 12
        word |= _mask(off, 12)
    elif fmt == Fmt.JAL:
        if instr.imm % 2:
            raise EncodingError("jump offset must be even")
        off = instr.imm >> 1
        _fit(off, _IMM17_MIN, _IMM17_MAX, "jump offset/2", instr)
        word |= _mask(instr.rd, 5) << 17
        word |= _mask(off, 17)
    elif fmt == Fmt.LUI:
        _fit(instr.imm, _IMM17_MIN, _IMM17_MAX, "imm17", instr)
        word |= _mask(instr.rd, 5) << 17
        word |= _mask(instr.imm, 17)
    elif fmt == Fmt.NONE:
        pass
    else:  # pragma: no cover - all formats handled above
        raise EncodingError("unencodable format %r" % (fmt,))
    return word


def decode(word, pc=0):
    """Decode a 32-bit integer back into an :class:`Instr`."""
    opcode = (word >> 22) & 0x3FF
    try:
        mnemonic = MNEMONIC_OF[opcode]
    except KeyError:
        raise EncodingError("unknown opcode index %d" % opcode)
    op = OPS[mnemonic]
    instr = Instr(op, pc=pc)
    fmt = op.fmt
    if fmt in (Fmt.R, Fmt.XI_R, Fmt.AMO):
        instr.rd = (word >> 17) & 0x1F
        instr.rs1 = (word >> 12) & 0x1F
        instr.rs2 = (word >> 7) & 0x1F
    elif fmt == Fmt.R2:
        instr.rd = (word >> 17) & 0x1F
        instr.rs1 = (word >> 12) & 0x1F
    elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.LOAD, Fmt.JALR, Fmt.XI_I):
        instr.rd = (word >> 17) & 0x1F
        instr.rs1 = (word >> 12) & 0x1F
        instr.imm = _sext(word & 0xFFF, 12)
    elif fmt == Fmt.STORE:
        instr.rs2 = (word >> 17) & 0x1F
        instr.rs1 = (word >> 12) & 0x1F
        instr.imm = _sext(word & 0xFFF, 12)
    elif fmt in (Fmt.BRANCH, Fmt.XLOOP):
        instr.rs1 = (word >> 17) & 0x1F
        instr.rs2 = (word >> 12) & 0x1F
        instr.imm = _sext(word & 0xFFF, 12) << 1
    elif fmt == Fmt.JAL:
        instr.rd = (word >> 17) & 0x1F
        instr.imm = _sext(word & 0x1FFFF, 17) << 1
    elif fmt == Fmt.LUI:
        instr.rd = (word >> 17) & 0x1F
        instr.imm = _sext(word & 0x1FFFF, 17)
    return instr
