"""Paper-reference comparison machinery tests."""

import pytest

from repro.eval.paper_reference import (PAPER_IO_S, ShapeComparison,
                                        _spearman, compare_table2,
                                        render_comparison)


class TestSpearman:
    def test_perfect_agreement(self):
        assert _spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert _spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        a = [1.0, 2.5, 0.3, 9.0]
        b = [x ** 3 for x in a]
        assert _spearman(a, b) == pytest.approx(1.0)


class TestCompare:
    def test_direction_agreement_counts(self):
        paper = {"a": 2.0, "b": 0.5, "c": 1.5}
        measured = {"a": 3.0, "b": 0.8, "c": 0.7}
        cmp = compare_table2(measured, paper=paper)
        # a agrees, b agrees, c disagrees
        assert cmp.direction_agreement == pytest.approx(2 / 3)

    def test_neutral_band(self):
        paper = {"a": 1.02}
        measured = {"a": 0.98}
        cmp = compare_table2(measured, paper=paper)
        assert cmp.direction_agreement == 1.0   # both ~1x: neutral

    def test_only_common_kernels(self):
        cmp = compare_table2({"rgb2cmyk-uc": 3.0, "made-up": 9.0})
        assert cmp.kernels == ["rgb2cmyk-uc"]

    def test_render(self):
        cmp = compare_table2({"rgb2cmyk-uc": 3.0, "sha-or": 1.1,
                              "dither-or": 0.9})
        text = render_comparison(cmp)
        assert "Spearman" in text
        assert "rgb2cmyk-uc" in text

    def test_paper_table_covers_all_25(self):
        assert len(PAPER_IO_S) == 25
