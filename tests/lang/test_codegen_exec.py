"""End-to-end code-generation tests: compile MiniC, execute on the
golden model (and the LPSU for annotated loops), check results against
Python semantics.  Includes a differential property test: GP binary,
XLOOPS-traditional, and XLOOPS-specialized must agree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import CompileError, compile_source
from repro.sim import Memory, run_program, to_s32
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

A, B, C = 0x100000, 0x200000, 0x300000
IO_X = SystemConfig("io+x", IO, LPSUConfig())


def run_fn(src, fn, args, mem=None, **compile_kw):
    cp = compile_source(src, **compile_kw)
    core = run_program(cp.program, fn, args, mem=mem)
    return core


class TestScalarCode:
    def test_arith_and_return(self):
        src = "int f(int x, int y) { return (x + y * 3) % 7 - 2; }"
        core = run_fn(src, "f", [10, 4])
        assert core.return_value == (10 + 4 * 3) % 7 - 2

    def test_negative_division_truncates(self):
        src = "int f(int x, int y) { return x / y + x % y; }"
        core = run_fn(src, "f", [to_s32(-7) & 0xFFFFFFFF, 2])
        assert core.return_value == -3 + -1

    def test_comparisons(self):
        src = """
int f(int x, int y) {
    return (x < y) + (x <= y)*2 + (x == y)*4 + (x != y)*8
         + (x > y)*16 + (x >= y)*32;
}"""
        assert run_fn(src, "f", [1, 2]).return_value == 1 + 2 + 8
        assert run_fn(src, "f", [2, 2]).return_value == 2 + 4 + 32
        assert run_fn(src, "f", [3, 2]).return_value == 8 + 16 + 32

    def test_logical_short_circuit(self):
        # right operand of && must not execute when left is false:
        # guard an out-of-range-looking index behind a bounds check
        src = """
int f(int* a, int i, int n) {
    if (i < n && a[i] > 0) { return 1; }
    return 0;
}"""
        mem = Memory()
        mem.write_words(A, [5])
        assert run_fn(src, "f", [A, 0, 1], mem).return_value == 1
        assert run_fn(src, "f", [A, 9999999, 1],
                      Memory()).return_value == 0

    def test_logical_as_value(self):
        src = "int f(int x, int y) { int b = x && y; return b | ((x || y) << 1); }"
        assert run_fn(src, "f", [1, 0]).return_value == 2
        assert run_fn(src, "f", [3, 5]).return_value == 3
        assert run_fn(src, "f", [0, 0]).return_value == 0

    def test_unary_ops(self):
        src = "int f(int x) { return -x + !x + ~x; }"
        assert run_fn(src, "f", [5]).return_value == -5 + 0 + ~5

    def test_while_loop(self):
        src = """
int f(int n) {
    int s = 0; int i = 0;
    while (i < n) { s += i; i++; }
    return s;
}"""
        assert run_fn(src, "f", [10]).return_value == 45

    def test_break_continue(self):
        src = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    return s;
}"""
        assert run_fn(src, "f", [100]).return_value == sum(
            i for i in range(7) if i != 3)

    def test_function_calls(self):
        src = """
int square(int x) { return x * x; }
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += square(i); }
    return s;
}"""
        assert run_fn(src, "f", [5]).return_value == 30

    def test_recursion(self):
        src = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}"""
        assert run_fn(src, "fib", [10]).return_value == 55

    def test_local_array(self):
        src = """
int f(int n) {
    int buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = i * i; }
    return buf[n];
}"""
        assert run_fn(src, "f", [5]).return_value == 25


class TestMemoryCode:
    def test_char_arrays(self):
        src = """
void f(char* src, char* dst, int n) {
    for (int i = 0; i < n; i++) {
        dst[i] = (char)(src[i] + 1);
    }
}"""
        mem = Memory()
        mem.write_bytes(A, [10, 255, 0, 100])
        run_fn(src, "f", [A, B, 4], mem)
        assert mem.read_bytes(B, 4) == [11, 0, 1, 101]

    def test_constant_subscript_folds_to_offset(self):
        cp = compile_source("int f(int* a) { return a[3]; }")
        assert "lw" in cp.asm_text
        assert "slli" not in cp.asm_text   # folded into the immediate

    def test_amo(self):
        src = """
int f(int* c, int n) {
    for (int i = 0; i < n; i++) { int old = amo_add(&c[0], i); }
    return c[0];
}"""
        mem = Memory()
        mem.store_word(A, 100)
        assert run_fn(src, "f", [A, 5], mem).return_value == 110


class TestFloatCode:
    def test_float_arith(self):
        src = """
float f(float* a) { return a[0] * 2.0 + a[1] / 0.5 - 1.5; }"""
        mem = Memory()
        mem.write_floats(A, [3.0, 1.0])
        core = run_fn(src, "f", [A], mem)
        from repro.sim import bits_to_f32
        assert bits_to_f32(core.regs[10]) == pytest.approx(6.5)

    def test_float_compare_and_sqrt(self):
        src = """
int f(float* a) {
    float r = sqrtf(a[0]);
    if (r > 2.9) { if (r < 3.1) { return 1; } }
    return 0;
}"""
        mem = Memory()
        mem.write_floats(A, [9.0])
        assert run_fn(src, "f", [A], mem).return_value == 1

    def test_casts(self):
        src = """
int f(int x) {
    float y = (float)x;
    y = y * 0.5;
    return (int)y;
}"""
        assert run_fn(src, "f", [9]).return_value == 4


class TestXLoopExecution:
    def _tri_modal(self, src, fn, args, setup, check, n_words):
        """Run GP, traditional-XLOOPS, specialized-XLOOPS; all agree."""
        outs = {}
        for name, kw, mode in (
                ("gp", {"xloops": False}, "traditional"),
                ("trad", {}, "traditional"),
                ("spec", {}, "specialized")):
            cp = compile_source(src, **kw)
            mem = Memory()
            setup(mem)
            cfg = IO_X if mode == "specialized" else SystemConfig("io", IO)
            r = simulate(cp.program, cfg, entry=fn, args=args, mem=mem,
                         mode=mode)
            outs[name] = (mem.read_words(B, n_words), r)
        check(outs["gp"][0])
        assert outs["gp"][0] == outs["trad"][0] == outs["spec"][0]
        assert outs["spec"][1].specialized_invocations >= 1
        return outs

    def test_uc_saxpy_like(self):
        src = """
void f(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = a[i] * 3 + i; }
}"""
        n = 40
        self._tri_modal(
            src, "f", [A, B, n],
            lambda mem: mem.write_words(A, range(n)),
            lambda out: out == [i * 3 + i for i in range(n)],
            n)

    def test_or_running_max(self):
        src = """
void f(int* a, int* b, int n) {
    int best = -1000000;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        if (a[i] > best) { best = a[i]; }
        b[i] = best;
    }
}"""
        n = 32
        data = [(i * 37) % 50 - 25 for i in range(n)]
        expect, cur = [], -10 ** 6
        for v in data:
            cur = max(cur, v)
            expect.append(cur)
        outs = self._tri_modal(
            src, "f", [A, B, n],
            lambda mem: mem.write_words(A, [v & 0xFFFFFFFF for v in data]),
            lambda out: [to_s32(w) for w in out] == expect,
            n)
        cp = compile_source(src)
        assert cp.loop_kinds() == ("xloop.or",)

    def test_om_stencil_recurrence(self):
        src = """
void f(int* a, int* b, int n) {
    b[0] = a[0];
    #pragma xloops ordered
    for (int i = 1; i < n; i++) { b[i] = b[i-1] + a[i]; }
}"""
        n = 24
        import itertools
        self._tri_modal(
            src, "f", [A, B, n],
            lambda mem: mem.write_words(A, range(n)),
            lambda out: out == list(itertools.accumulate(range(n))),
            n)

    def test_nested_war_kernel(self):
        src = """
void war(int* path, int n) {
    for (int k = 0; k < n; k++) {
        #pragma xloops ordered
        for (int i = 0; i < n; i++) {
            #pragma xloops unordered
            for (int j = 0; j < n; j++) {
                int through = path[i*n+k] + path[k*n+j];
                if (through < path[i*n+j]) { path[i*n+j] = through; }
            }
        }
    }
}"""
        n = 8
        INF = 10 ** 6
        import random
        rng = random.Random(7)
        dist = [[0 if i == j else (rng.randrange(1, 20)
                                   if rng.random() < 0.5 else INF)
                 for j in range(n)] for i in range(n)]
        flat = [dist[i][j] for i in range(n) for j in range(n)]
        expect = [row[:] for row in dist]
        for k in range(n):
            for i in range(n):
                for j in range(n):
                    expect[i][j] = min(expect[i][j],
                                       expect[i][k] + expect[k][j])
        expect_flat = [expect[i][j] for i in range(n) for j in range(n)]

        for kw, mode, cfg in (({"xloops": False}, "traditional",
                               SystemConfig("io", IO)),
                              ({}, "specialized", IO_X)):
            cp = compile_source(src, **kw)
            mem = Memory()
            mem.write_words(B, flat)
            simulate(cp.program, cfg, entry="war", args=[B, n], mem=mem,
                     mode=mode)
            assert mem.read_words(B, n * n) == expect_flat, (kw, mode)

    def test_xi_disabled_more_instructions(self):
        src = """
void f(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = a[i] + 1; }
}"""
        with_xi = compile_source(src, xi_enabled=True)
        without = compile_source(src, xi_enabled=False)
        n = 64
        counts = {}
        for name, cp in (("xi", with_xi), ("noxi", without)):
            mem = Memory()
            mem.write_words(A, range(n))
            r = simulate(cp.program, IO_X, entry="f", args=[A, B, n],
                         mem=mem, mode="specialized")
            assert mem.read_words(B, n) == [i + 1 for i in range(n)]
            counts[name] = r.total_instrs
        # paper Section V-C: lack of xi increases dynamic instructions
        assert counts["noxi"] > counts["xi"]
        assert "addiu.xi" in with_xi.asm_text
        assert ".xi" not in without.asm_text


class TestDifferential:
    """Random straight-line integer expressions: compiled result must
    match Python's evaluation."""

    @staticmethod
    def _eval(expr_ops, x, y):
        v = x
        for op, operand in expr_ops:
            operand = operand if operand else 1
            if op == "+":
                v = to_s32((v + operand) & 0xFFFFFFFF)
            elif op == "-":
                v = to_s32((v - operand) & 0xFFFFFFFF)
            elif op == "*":
                v = to_s32((v * operand) & 0xFFFFFFFF)
            elif op == "^":
                v = to_s32((v ^ operand) & 0xFFFFFFFF)
            elif op == "&":
                v = to_s32(v & operand)
            elif op == "|":
                v = to_s32(v | operand)
        return v

    @given(x=st.integers(-1000, 1000),
           ops=st.lists(st.tuples(st.sampled_from("+-*^&|"),
                                  st.integers(-100, 100)),
                        min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_expression_chain(self, x, ops):
        body = "int v = x;\n"
        for op, operand in ops:
            operand = operand if operand else 1
            body += "    v = v %s (%d);\n" % (op, operand)
        src = "int f(int x) { %s return v; }" % body
        core = run_fn(src, "f", [x & 0xFFFFFFFF])
        assert core.return_value == self._eval(
            [(op, o if o else 1) for op, o in ops], x, 0)


class TestRegisterPressure:
    def test_spill_outside_loops_works(self):
        decls = "\n".join("    int v%d = x + %d;" % (i, i)
                          for i in range(25))
        uses = " + ".join("v%d" % i for i in range(25))
        src = "int f(int x) {\n%s\n    return %s;\n}" % (decls, uses)
        core = run_fn(src, "f", [10])
        assert core.return_value == sum(10 + i for i in range(25))

    def test_spill_inside_xloop_rejected(self):
        decls = "\n".join("        int v%d = a[i] + %d;" % (i, i)
                          for i in range(25))
        uses = " + ".join("v%d" % i for i in range(25))
        src = """
void f(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
%s
        b[i] = %s;
    }
}""" % (decls, uses)
        with pytest.raises(CompileError, match="register pressure"):
            compile_source(src)
