"""Regenerate paper Fig 8: dynamic energy efficiency vs performance
for specialized and adaptive execution on io+x, ooo/2+x, ooo/4+x.

Expected shape: on io+x specialized execution adds performance at
similar-or-slightly-lower efficiency; on the OOO hosts specialized
execution is *more* energy efficient across the board (paper: 1.5-3x
vs ooo/2 and ooo/4).
"""

from conftest import run_once

from repro.eval import geomean, render_fig8
from repro.eval.figures import fig8_data


def test_fig8(benchmark):
    points = run_once(benchmark, fig8_data, scale="small")
    print()
    print(render_fig8(points))
    by_cfg = {}
    for p in points:
        if p.mode == "specialized":
            by_cfg.setdefault(p.config, []).append(p.efficiency)
    print("\ngeomean specialized energy efficiency:")
    for cfg, effs in by_cfg.items():
        print("  %-8s %.2f" % (cfg, geomean(effs)))
    assert geomean(by_cfg["ooo/4+x"]) > 1.2
    assert geomean(by_cfg["ooo/2+x"]) > 1.0
