"""Turbo backend: compiled steady-state schedule replay.

The fast path's third tier (see :mod:`repro.sim.backends`).  The base
:class:`~repro.uarch.schedmemo.ScheduleMemo` replays recorded epoch
segments through an interpreted action loop; profiling shows that loop
is only ~2x faster than plain stepping because every action still pays
Python dispatch.  This module exec-compiles each recorded segment into
one straight-line batch function and — when a segment's end state
re-keys its own start state — replays *every remaining whole epoch of
the loop in a single call*.

Correctness model (extends the schedmemo contract):

* The generated code executes every recorded slot's real semantics
  against live registers and memory (the same inlined expressions the
  fusion engine uses), so architectural state is exact by construction.
* Data-dependent outcomes are validated live: every recorded branch
  direction becomes an ``if`` on the live condition, and every recorded
  cache hit/miss becomes an ``if`` on the live LRU set.  A divergence
  site first applies the diverging op exactly as the slow path would
  (actual direction, actual latency, actual LRU update), then flushes
  the partially-completed epoch's statistics and hands the diverged
  cycle to :meth:`~repro.uarch.lpsu.LPSU._replay_abort` — identical
  observable behaviour to the interpreted replayer's abort.
* Everything else about a matched schedule is compile-time
  deterministic: given the signature, the validated branches, and the
  validated miss outcomes, all stall spans, issue offsets, LLFU
  acquisition order and retire timing are fixed.  The generator
  re-derives them by statically walking the recording and refuses to
  compile (falling back to interpreted replay) on any inconsistency or
  on constructs outside the eligible pattern (e.g. ``xbreak``).

Signatures gain an address-phase term: the base signature omits cache
state, so a loop whose schedule self-loops but whose miss pattern has a
longer period (e.g. a byte-stream kernel missing every 32nd iteration)
would abort every replay.  Any constant-stride access stream's hit/miss
outcome is periodic in ``iteration mod line_bytes``, so TurboMemo keys
segments by ``(base signature, (start_idx + next_k) & (line_bytes-1))``
and the steady state closes into a proper segment cycle whose recorded
miss outcomes match.

Approx mode (``--approx`` > 0, DSE only): the generated code skips LRU
maintenance and hit/miss validation, charging the recorded hit/miss
counts instead.  Architectural values and branch validation stay exact;
only timing may drift when the miss pattern shifts.  Approx memos are
cached under a separate content key so approx results can never serve
exact requests.

TurboMemo instances persist process-wide keyed by loop content (body,
MIV table, configs, cache geometry), like the fusion engine's factory
cache: segments hold no values, only validated schedule structure, so
sharing them across invocations and simulators with equal content keys
is sound and lets later runs start in steady state immediately.
"""

from __future__ import annotations

import sys

from ..uarch.schedmemo import ScheduleMemo, Segment
from .fusion import _ctrl_of, _emit_sem
from .functional import _LOAD_SIZE, _STORE_SIZE, _fp_div, _muldiv
from .fusion import _fsqrt, _lpsu_content_key
from .memory import bits_to_f32, f32_to_bits, to_s32


#: word-aligned accesses go through a 32-bit memoryview cast of the
#: page; the cast uses native byte order, so the single-index fast
#: path is only emitted on little-endian hosts (the simulated machine
#: is little-endian)
_NATIVE_WORDS = sys.byteorder == "little"


def _word_view(pg):
    return memoryview(pg).cast("I")


class _Div(Exception):
    """Raised by generated code at a validation divergence site."""


class _Refuse(Exception):
    """Internal: segment cannot be compiled; use interpreted replay."""


# ---------------------------------------------------------------------------
# per-segment code generation
# ---------------------------------------------------------------------------

class _SegGen:
    """Compile one recorded segment into a batch replay function.

    The generated ``make(L)`` binds one LPSU's live state and returns
    ``seg(cyc0, reps) -> (completed, cycle)`` replaying *reps*
    back-to-back repetitions of the segment starting at *cyc0*.
    """

    def __init__(self, lpsu, sig, seg, approx=0.0):
        self.L = lpsu
        self.sig = sig
        self.seg = seg
        self.approx = approx > 0.0

    # -- small helpers --------------------------------------------------

    @staticmethod
    def _rn(line, x):
        """Rename register-file references to context *x*'s array."""
        return line.replace("R[", "R%d[" % x)

    def _sem_lines(self, ins, x):
        tmp = []
        _emit_sem(tmp, ins)
        return [self._rn(ln, x) for ln in tmp]

    def _site(self, over_x, over):
        """Record a divergence site; returns its index.

        *over* holds the diverging context's post-divergence tracker
        values plus the stat partials its op contributed."""
        t = self.tot
        cnts = tuple((i, n) for i, n in enumerate(self.cnt) if n)
        rows = []
        for i in range(self.n_ctx):
            if not self.touched[i]:
                continue
            if i == over_x:
                rows.append((i, over["act"], over["ko"], over["pc"],
                             over["ra"], self.its[i], over["attd"]))
            else:
                rows.append((i, self.act[i], self.ko[i], self.pc[i],
                             self.ra[i], self.its[i], self.attd[i]))
        site = (t["busy"] + over.get("busy", 0),
                t["brs"] + over.get("brs", 0), t["raw"],
                t["mps"], t["lls"], t["iters"], t["idq"], t["mmul"],
                t["dca"] + over.get("dca", 0),
                t["dcm"] + over.get("dcm", 0),
                t["ch"] + over.get("ch", 0),
                t["cm"] + over.get("cm", 0),
                cnts, tuple(rows), self.grants + over.get("grant", 0),
                self.begins, t["ad"], self.dc,
                frozenset(self.retired) if self.retired else None)
        self.sites.append(site)
        return len(self.sites) - 1

    def _fixups(self, body, ind):
        """Emit scoreboard writes for the statically-tracked pending
        entries still live at the current cycle, so the abort path
        sees the exact ready times the slow path would have."""
        dc = self.dc
        for (x, reg), v in sorted(self.dmap.items()):
            if v > dc:
                body.append(ind + "D%d[%d] = _b + %d" % (x, reg, v))

    # -- the walk -------------------------------------------------------

    def _walk(self):
        """Statically walk the recording, emitting the hot-path body."""
        L = self.L
        sig = self.sig
        meta = L._meta
        pen = L.cfg.branch_penalty
        ports = L.cfg.mem_ports
        ccfg = L.cache.config
        hit_lat = ccfg.hit_latency
        miss_lat = ccfg.hit_latency + ccfg.miss_latency
        nsets = L.cache.num_sets
        lshift = L.cache._line_shift
        setbits = nsets.bit_length() - 1
        nways = ccfg.ways
        body_n = L._body_n
        base = L._body_base
        d = L.d
        self.mivs = mivs = sorted(
            (m.reg, m.increment) for m in d.mivt.values())
        n_ctx = self.n_ctx = len(L.contexts)
        if len(sig) < n_ctx + 1:
            raise _Refuse

        # trackers (all offsets relative to the repetition base _b,
        # iteration indices relative to the repetition's _k0)
        self.act = act = [False] * n_ctx
        self.ko = ko = [0] * n_ctx
        self.pc = pc = [0] * n_ctx
        self.ra = ra = [0] * n_ctx
        self.its = its = [None] * n_ctx
        self.attd = attd = [0] * n_ctx
        self.touched = touched = [False] * n_ctx
        # static scoreboard: (ctx, reg) -> pending writeback expiry
        # offset.  The signature pins every pending entry's offset, and
        # every in-segment write has a static latency, so ready times —
        # and therefore every raw-stall span — are fully determined at
        # compile time.  The hot path emits no scoreboard writes at
        # all: divergence sites re-materialize the entries still
        # pending at their cycle, and the epilogue writes the entries
        # pending past the segment end (validated against the end
        # signature below).
        self.dmap = dmap = {}
        for i in range(n_ctx):
            p = sig[i]
            if p[0] is not None:
                act[i] = True
                ko[i] = p[0]
                pc[i] = p[1]
                ra[i] = p[2]
            for reg, off in p[3]:
                dmap[(i, reg)] = off
        llfu = list(sig[n_ctx])
        self.tot = tot = {k: 0 for k in (
            "busy", "brs", "raw", "mps", "lls", "iters", "idq", "mmul",
            "dca", "dcm", "ch", "cm", "ad")}
        self.cnt = cnt = [0] * body_n
        self.sites = []
        self.pgregs = set()
        self.begins = 0
        self.any_br = False
        self.any_ret = False
        body = []
        I4 = "    "
        I5 = "     "
        E = body.append

        for dc, ops in self.seg.cycles:
            self.dc = dc
            self.grants = 0
            self.retired = set()
            for e in ops:
                tag = e[0]
                x = e[2]
                if not 0 <= x < n_ctx:
                    raise _Refuse
                if tag == "A":
                    slots, takens = e[3], e[4]
                    if not act[x] or pc[x] != slots[0] or ra[x] > dc:
                        raise _Refuse
                    touched[x] = True
                    off = 0
                    br = 0
                    for j, si in enumerate(slots):
                        if not 0 <= si < body_n:
                            raise _Refuse
                        mt = meta[si]
                        if mt[6] or mt[3] != 0 or mt[8] or mt[9] or mt[11]:
                            raise _Refuse  # xbreak/mem/llfu/CIR/bound
                        ins = mt[12]
                        tk = takens[j]
                        cnt[si] += 1
                        if mt[7]:             # branch / jump / xloop
                            ctrl = _ctrl_of(ins)
                            if ctrl is None:
                                raise _Refuse
                            if ctrl[0] == "jump":
                                if tk is not True or "_t" in ctrl[1]:
                                    raise _Refuse  # JALR excluded
                                for ln in ctrl[2]:
                                    E(I4 + self._rn(ln, x))
                                dst = mt[2]
                                if dst is not None:
                                    dmap[(x, dst)] = dc + off + 1
                                off += 1 + pen
                                br += pen
                                continue
                            if tk is None or mt[2] is not None:
                                raise _Refuse
                            cond = self._rn(ctrl[1], x)
                            # single possible divergence direction:
                            # recorded taken => actual not-taken
                            if tk:
                                a_pc = (ins.pc + 4 - base) >> 2
                                a_ra = dc + off + 1
                                a_br = br
                                E(I4 + "if not (%s):" % cond)
                            else:
                                a_pc = (ins.pc + ins.imm - base) >> 2
                                a_ra = dc + off + 1 + pen
                                a_br = br + pen
                                E(I4 + "if %s:" % cond)
                            self._fixups(body, I5)
                            s = self._site(x, {
                                "act": True, "ko": ko[x], "pc": a_pc,
                                "ra": a_ra, "attd": attd[x] + j + 1,
                                "busy": j + 1, "brs": a_br})
                            E(I5 + "_site = %d" % s)
                            E(I5 + "raise _X")
                            off += 1
                            if tk:
                                off += pen
                                br += pen
                        else:
                            for ln in self._sem_lines(ins, x):
                                E(I4 + ln)
                            dst = mt[2]
                            if dst is not None:
                                dmap[(x, dst)] = dc + off + 1
                            off += 1
                    if off != e[6] or br != e[7]:
                        raise _Refuse
                    n = len(slots)
                    tot["busy"] += n
                    tot["brs"] += br
                    attd[x] += n
                    pc[x] = e[5]
                    ra[x] = dc + e[6]
                elif tag == "M":
                    si = e[3]
                    if (not act[x] or pc[x] != si or ra[x] > dc
                            or self.grants >= ports
                            or not 0 <= si < body_n):
                        raise _Refuse
                    mt = meta[si]
                    if mt[3] != 1 or mt[6] or mt[8] or mt[9] or mt[11]:
                        raise _Refuse
                    ins = mt[12]
                    op = ins.op
                    if not (op.is_load or op.is_store):
                        raise _Refuse  # AMO/fence never recorded as M
                    touched[x] = True
                    miss = bool(e[4])
                    # counted before validation, like interpreted replay
                    cnt[si] += 1
                    if ins.imm:
                        E(I4 + "_a = (R%d[%d] + %d) & 4294967295"
                          % (x, ins.rs1, ins.imm))
                    else:
                        # register values are stored masked
                        E(I4 + "_a = R%d[%d]" % (x, ins.rs1))
                    is_load = op.is_load
                    rd = ins.rd if is_load else 0
                    if is_load:
                        self._emit_load(body, I4, op.mnemonic, ins.rs1)
                        if rd:
                            E(I4 + "R%d[%d] = _v" % (x, rd))
                    else:
                        E(I4 + "_v = R%d[%d]" % (x, ins.rs2))
                        self._emit_store(body, I4, op.mnemonic, ins.rs1)
                    rec_lat = miss_lat if miss else hit_lat
                    act_lat = hit_lat if miss else miss_lat
                    if not self.approx:
                        size = (_LOAD_SIZE[op.mnemonic][0] if is_load
                                else _STORE_SIZE[op.mnemonic])
                        # when the tag shift equals the page shift the
                        # tag IS the page number already held in the
                        # page-cache local (sizes 1/4 went through
                        # _emit_page just above)
                        if lshift + setbits == 12 and size in (1, 4):
                            tag = "_pn%d" % ins.rs1
                        else:
                            tag = "_t"
                            E(I4 + "_t = _a >> %d" % (lshift + setbits))
                        E(I4 + "_y = csets[(_a >> %d) & %d]"
                          % (lshift, nsets - 1))
                        over = {"act": True, "ko": ko[x], "pc": si + 1,
                                "ra": dc + 1, "attd": attd[x] + 1,
                                "busy": 1, "dca": 1, "grant": 1,
                                "dcm": 0 if miss else 1,
                                "ch": 1 if miss else 0,
                                "cm": 0 if miss else 1}
                        if not miss:   # recorded hit; divergence = miss
                            E(I4 + "try:")
                            E(I5 + "_y.remove(%s)" % tag)
                            E(I5 + "_y.insert(0, %s)" % tag)
                            E(I4 + "except _VE:")
                            E(I5 + "_y.insert(0, %s)" % tag)
                            E(I5 + "if len(_y) > %d:" % nways)
                            E(I5 + " _y.pop()")
                            self._fixups(body, I5)
                            if rd:
                                E(I5 + "D%d[%d] = _b + %d"
                                  % (x, rd, dc + act_lat))
                            s = self._site(x, over)
                            E(I5 + "_site = %d" % s)
                            E(I5 + "raise _X")
                        else:          # recorded miss; divergence = hit
                            E(I4 + "if %s in _y:" % tag)
                            E(I5 + "_y.remove(%s)" % tag)
                            E(I5 + "_y.insert(0, %s)" % tag)
                            self._fixups(body, I5)
                            if rd:
                                E(I5 + "D%d[%d] = _b + %d"
                                  % (x, rd, dc + act_lat))
                            s = self._site(x, over)
                            E(I5 + "_site = %d" % s)
                            E(I5 + "raise _X")
                            E(I4 + "_y.insert(0, %s)" % tag)
                            E(I4 + "if len(_y) > %d:" % nways)
                            E(I5 + "_y.pop()")
                    if rd:
                        dmap[(x, rd)] = dc + rec_lat
                    self.grants += 1
                    tot["busy"] += 1
                    tot["dca"] += 1
                    if miss:
                        tot["dcm"] += 1
                        tot["cm"] += 1
                    else:
                        tot["ch"] += 1
                    attd[x] += 1
                    pc[x] = si + 1
                    ra[x] = dc + 1
                elif tag == "B":
                    if act[x]:
                        raise _Refuse
                    touched[x] = True
                    k_off = self.begins
                    E(I4 + "_ai%d = 0" % x)
                    # _sk / _m<reg> are hoisted per-repetition bases
                    # (see build): idx = si0 + _k0 and each MIV's value
                    # at _k0, leaving one add per begin-time write
                    E(I4 + "R%d[%d] = (_sk + %d) & 4294967295"
                      % (x, d.idx_reg, k_off))
                    for reg, inc in mivs:
                        E(I4 + "R%d[%d] = (_m%d + %d) & 4294967295"
                          % (x, reg, reg, inc * k_off))
                    act[x] = True
                    ko[x] = k_off
                    pc[x] = 0
                    ra[x] = dc
                    its[x] = dc
                    attd[x] = 0
                    self.begins += 1
                    tot["idq"] += 1
                    tot["mmul"] += len(mivs)
                    tot["ad"] += 1
                    self.any_br = True
                elif tag == "R":
                    if not act[x] or pc[x] < body_n or ra[x] > dc:
                        raise _Refuse
                    touched[x] = True
                    if attd[x]:
                        E(I4 + "_si += _ai%d + %d" % (x, attd[x]))
                    else:
                        E(I4 + "_si += _ai%d" % x)
                    E(I4 + "_ai%d = 0" % x)
                    act[x] = False
                    ra[x] = dc + 1
                    attd[x] = 0
                    tot["iters"] += 1
                    tot["ad"] -= 1
                    self.retired.add(x)
                    self.any_br = True
                    self.any_ret = True
                elif tag == "r":
                    # raw stall: with every pending writeback offset
                    # pinned by the signature and every in-segment
                    # write latency static, the wake-up time is a
                    # compile-time constant — zero hot-path code
                    if not act[x] or not 0 <= pc[x] < body_n or ra[x] > dc:
                        raise _Refuse
                    w = dc
                    for s in meta[pc[x]][1]:
                        v = dmap.get((x, s))
                        if v is not None and v > w:
                            w = v
                    if w <= dc:
                        # the slow path only records a raw stall when a
                        # source is still pending; an expired static
                        # scoreboard here means the walk lost sync
                        raise _Refuse
                    touched[x] = True
                    tot["raw"] += w - dc
                    ra[x] = w
                elif tag == "F":
                    si = e[3]
                    if (not act[x] or pc[x] != si or ra[x] > dc
                            or not 0 <= si < body_n):
                        raise _Refuse
                    mt = meta[si]
                    if mt[3] != 2 or mt[6] or mt[8] or mt[9] or mt[11]:
                        raise _Refuse
                    unit = None
                    for u, free in enumerate(llfu):
                        if free <= dc:
                            unit = u
                            break
                    if unit is None:
                        raise _Refuse
                    llfu[unit] = dc + mt[5]
                    touched[x] = True
                    for ln in self._sem_lines(mt[12], x):
                        E(I4 + ln)
                    E(I4 + "lf[%d] = _b + %d" % (unit, dc + mt[5]))
                    dst = mt[2]
                    if dst is not None:
                        dmap[(x, dst)] = dc + mt[4]
                    cnt[si] += 1
                    tot["busy"] += 1
                    attd[x] += 1
                    pc[x] = si + 1
                    ra[x] = dc + 1
                elif tag == "p":
                    if not act[x] or self.grants < ports:
                        raise _Refuse
                    touched[x] = True
                    tot["mps"] += 1
                    ra[x] = dc + 1
                elif tag == "l":
                    if not act[x]:
                        raise _Refuse
                    for free in llfu:
                        if free <= dc:
                            raise _Refuse
                    touched[x] = True
                    tot["lls"] += 1
                    ra[x] = dc + 1
                else:
                    raise _Refuse

        # end-state sanity vs the stored end signature
        end = self.seg.end_sig
        if len(end) < n_ctx + 1:
            raise _Refuse
        nb = self.seg.n_begins
        nc = self.seg.n_cycles
        for i in range(n_ctx):
            p = end[i]
            if act[i] != (p[0] is not None):
                raise _Refuse
            if act[i]:
                if ko[i] - nb != p[0] or pc[i] != p[1]:
                    raise _Refuse
                if max(ra[i] - nc, 0) != p[2]:
                    raise _Refuse
            # the static scoreboard's still-pending entries must match
            # the recorded end signature exactly: this both proves the
            # epilogue writes below restore the precise post-segment
            # scoreboard and guarantees repetition 2+ starts from the
            # same relative pending set as repetition 1
            pend = tuple((reg, v - nc) for (xx, reg), v
                         in sorted(dmap.items()) if xx == i and v > nc)
            if pend != tuple(sorted(p[3])):
                raise _Refuse
        for u, free in enumerate(llfu):
            if max(free - nc, 0) != end[n_ctx][u]:
                raise _Refuse
        if self.begins != nb:
            raise _Refuse
        return body

    def _emit_page(self, out, ind, reg):
        """Guarded per-stream page lookup: accesses through one address
        register walk sequentially, so the resolved page is kept in a
        local (``_pn<reg>``/``_pg<reg>``) and only re-fetched on a page
        crossing — one compare per access instead of a dict lookup."""
        self.pgregs.add(reg)
        E = out.append
        E(ind + "if _a >> 12 != _pn%d:" % reg)
        E(ind + " _pn%d = _a >> 12" % reg)
        E(ind + " _pg%d = pages.get(_pn%d)" % (reg, reg))
        E(ind + " if _pg%d is None:" % reg)
        E(ind + "  _pg%d = getpage(_a)" % reg)
        if _NATIVE_WORDS:
            E(ind + " _mv%d = wv(_pg%d)" % (reg, reg))

    def _emit_load(self, out, ind, mnemonic, reg):
        """Inline ``Memory.load`` into ``_v`` (page-cached fast path)."""
        size, signed = _LOAD_SIZE[mnemonic]
        E = out.append
        if size == 4:
            self._emit_page(out, ind, reg)
            E(ind + "_o = _a & 4095")
            if _NATIVE_WORDS:
                E(ind + "if not _o & 3:")
                E(ind + " _v = _mv%d[_o >> 2]" % reg)
                E(ind + "elif _o <= 4092:")
            else:
                E(ind + "if _o <= 4092:")
            E(ind + " _v = (_pg%d[_o] | (_pg%d[_o + 1] << 8)"
                    " | (_pg%d[_o + 2] << 16) | (_pg%d[_o + 3] << 24))"
                    % (reg, reg, reg, reg))
            E(ind + "else:")
            E(ind + " _v = mload(_a, 4, %r)" % signed)
        elif size == 1:
            self._emit_page(out, ind, reg)
            E(ind + "_v = _pg%d[_a & 4095]" % reg)
            if signed:
                E(ind + "if _v >= 128:")
                E(ind + " _v += 4294967040")
        else:
            E(ind + "_v = mload(_a, %d, %r)" % (size, signed))

    def _emit_store(self, out, ind, mnemonic, reg):
        """Inline ``Memory.store`` of ``_v`` (page-cached fast path)."""
        size = _STORE_SIZE[mnemonic]
        E = out.append
        if size == 4:
            self._emit_page(out, ind, reg)
            E(ind + "_o = _a & 4095")
            if _NATIVE_WORDS:
                E(ind + "if not _o & 3:")
                E(ind + " _mv%d[_o >> 2] = _v" % reg)
                E(ind + "elif _o <= 4092:")
            else:
                E(ind + "if _o <= 4092:")
            E(ind + " _pg%d[_o] = _v & 255" % reg)
            E(ind + " _pg%d[_o + 1] = (_v >> 8) & 255" % reg)
            E(ind + " _pg%d[_o + 2] = (_v >> 16) & 255" % reg)
            E(ind + " _pg%d[_o + 3] = (_v >> 24) & 255" % reg)
            E(ind + "else:")
            E(ind + " mstore(_a, 4, _v)")
        elif size == 1:
            self._emit_page(out, ind, reg)
            E(ind + "_pg%d[_a & 4095] = _v & 255" % reg)
        else:
            E(ind + "mstore(_a, %d, _v)" % size)

    # -- assembly -------------------------------------------------------

    def build(self):
        """Return the compiled ``make`` factory, or None on refusal."""
        try:
            body = self._walk()
        except (_Refuse, TypeError, IndexError, KeyError):
            return None
        nc = self.seg.n_cycles
        nb = self.seg.n_begins
        tot = self.tot
        touched = self.touched
        used = [i for i in range(self.n_ctx) if touched[i]]
        dctxs = sorted({x for x, _ in self.dmap} - set(used))
        out = []
        E = out.append
        E("def make(L):")
        E(" cx = L.contexts")
        for i in used:
            E(" C%d = cx[%d]" % (i, i))
            E(" R%d = C%d.regs" % (i, i))
            E(" D%d = C%d.ready" % (i, i))
        for i in dctxs:
            E(" D%d = cx[%d].ready" % (i, i))
        E(" mem = L.mem")
        E(" pages = mem._pages")
        E(" getpage = mem._page")
        E(" mload = mem.load")
        E(" mstore = mem.store")
        E(" cache = L.cache")
        E(" csets = cache._sets")
        E(" st = L.stats")
        E(" counts = L._exec_counts")
        E(" lf = L._llfu_free")
        E(" li = L.live_in")
        E(" ev = L.events")
        E(" abort = L._replay_abort")
        E(" def seg(cyc0, reps):")
        E("  nk0 = L._next_k")
        E("  si0 = L.start_idx")
        for i in used:
            E("  _ai%d = C%d.attempt_instrs" % (i, i))
        for r in sorted(self.pgregs):
            E("  _pn%d = -1" % r)
            E("  _pg%d = None" % r)
            if _NATIVE_WORDS:
                E("  _mv%d = None" % r)
        E("  _si = 0")
        E("  _rp = 0")
        E("  _site = -1")
        E("  try:")
        E("   while _rp < reps:")
        E("    _b = cyc0 + _rp * %d" % nc)
        E("    _k0 = nk0 + _rp * %d" % nb)
        if self.begins:
            E("    _sk = si0 + _k0")
            for reg, inc in self.mivs:
                E("    _m%d = li[%d] + %d * _k0" % (reg, reg, inc))
        out.extend(body)
        for i in used:
            if self.attd[i]:
                E("    _ai%d += %d" % (i, self.attd[i]))
        E("    _rp += 1")
        E("  except _X:")
        E("   pass")
        # epilogue: flush per-repetition constants scaled by the number
        # of completed repetitions (shared by both outcomes), ...
        if self.any_ret:
            E("  st.instrs += _si")
        for attr, key in (("busy", "busy"), ("stall_branch", "brs"),
                          ("stall_raw", "raw"),
                          ("stall_memport", "mps"), ("stall_llfu", "lls"),
                          ("iterations", "iters")):
            if tot[key]:
                E("  st.%s += %d * _rp" % (attr, tot[key]))
        if tot["ch"]:
            E("  cache.hits += %d * _rp" % tot["ch"])
        if tot["cm"]:
            E("  cache.misses += %d * _rp" % tot["cm"])
        ev_lines = [(a, tot[k]) for a, k in
                    (("idq_op", "idq"), ("miv_mul", "mmul"),
                     ("dc_access", "dca"), ("dc_miss", "dcm")) if tot[k]]
        if ev_lines:
            E("  if ev is not None:")
            for attr, v in ev_lines:
                E("   ev.%s += %d * _rp" % (attr, v))
        for i, n in enumerate(self.cnt):
            if n:
                E("  counts[%d] += %d * _rp" % (i, n))
        if nb:
            E("  L._next_k = nk0 + %d * _rp" % nb)
        if tot["ad"]:
            E("  L._active_count += %d * _rp" % tot["ad"])
        if self.any_br:
            E("  L._order_dirty = True")
        # ... then either write the statically-known end state, or apply
        # the divergence site's partial-repetition bookkeeping
        E("  if _site < 0:")
        for i in used:
            E("   C%d.pc_index = %d" % (i, self.pc[i]))
            E("   C%d.k = _k0 + %d" % (i, self.ko[i]))
            E("   C%d.active = %r" % (i, self.act[i]))
            E("   C%d.ready_at = _b + %d" % (i, self.ra[i]))
            if self.its[i] is not None:
                E("   C%d.iter_start = _b + %d" % (i, self.its[i]))
            E("   C%d.attempt_instrs = _ai%d" % (i, i))
        # restore the scoreboard entries still pending past the
        # segment end (statically validated against the end signature)
        for (x, reg), v in sorted(self.dmap.items()):
            if v > nc:
                E("   D%d[%d] = _b + %d" % (x, reg, v))
        E("   return (True, cyc0 + %d * _rp)" % nc)
        E("  (_bp, _brp, _rwp, _mpp, _llp, _itp, _iqp, _mmp, _dap,"
          " _dmp, _chp, _cmp, _cnp, _rows, _g, _bg, _adp, _dcv, _ret)"
          " = _S[_site]")
        E("  st.busy += _bp")
        E("  st.stall_branch += _brp")
        E("  st.stall_raw += _rwp")
        E("  st.stall_memport += _mpp")
        E("  st.stall_llfu += _llp")
        E("  st.iterations += _itp")
        E("  cache.hits += _chp")
        E("  cache.misses += _cmp")
        E("  if ev is not None:")
        E("   ev.idq_op += _iqp")
        E("   ev.miv_mul += _mmp")
        E("   ev.dc_access += _dap")
        E("   ev.dc_miss += _dmp")
        E("  for _s2, _n2 in _cnp:")
        E("   counts[_s2] += _n2")
        for i in used:
            E("  C%d.attempt_instrs = _ai%d" % (i, i))
        E("  for _x2, _ac, _ko2, _pc2, _ra2, _it2, _at2 in _rows:")
        E("   _c = cx[_x2]")
        E("   _c.active = _ac")
        E("   _c.k = _k0 + _ko2")
        E("   _c.pc_index = _pc2")
        E("   _c.ready_at = _b + _ra2")
        E("   if _it2 is not None:")
        E("    _c.iter_start = _b + _it2")
        E("   _c.attempt_instrs += _at2")
        E("  L._mem_grants = _g")
        E("  L._next_k = _k0 + _bg")
        E("  L._active_count += _adp")
        E("  return (False, abort(_b + _dcv, _ret))")
        E(" return seg")

        ns = {
            "s32": to_s32,
            "f2b": f32_to_bits,
            "b2f": bits_to_f32,
            "md": _muldiv,
            "fdivb": _fp_div,
            "fsqrtb": _fsqrt,
            "_X": _Div,
            "_VE": ValueError,
            "_S": tuple(self.sites),
            "wv": _word_view,
        }
        src = "\n".join(out)
        _SegGen.last_src = src   # debugging aid (repro profile --turbo-dump)
        code = compile(src, "<turbo:segment>", "exec")
        exec(code, ns)
        return ns["make"]


# ---------------------------------------------------------------------------
# the memo
# ---------------------------------------------------------------------------

class TurboMemo(ScheduleMemo):
    """Schedule memo with phase-extended signatures and compiled
    segment replay (the turbo backend's engine above the fused tier).

    Raised dead/size thresholds: the compiled replayer amortizes far
    more recording than the interpreted one, and the phase-extended
    signature space is up to ``line_bytes`` times larger.
    """

    __slots__ = ("approx", "phase_mask", "_make", "_comp")

    dead_misses = 192
    max_segments = 512
    dead_aborts = 512

    #: longest end-sig chain followed when closing a phase cycle; a
    #: real cycle is at most ``line_bytes`` segments (phase period)
    _MAX_CHAIN = 64

    def __init__(self, line_bytes, approx=0.0):
        ScheduleMemo.__init__(self)
        self.approx = float(approx)
        self.phase_mask = line_bytes - 1
        # (start_sig, composite?) -> (make factory or None, segment
        # identity); factories are retained per signature so
        # recompilation only happens if the table was re-recorded
        self._make = {}
        # start_sig -> (composite segment or None, table size when the
        # chain walk last failed); a failed walk is retried once new
        # segments have been recorded
        self._comp = {}

    def signature(self, lpsu, cycle):
        """Base signature extended with the iteration address phase:
        any constant-stride access stream's hit/miss outcome is
        periodic in ``iteration mod line_bytes``, so keying on the
        phase makes recorded miss outcomes reproducible at match."""
        return ScheduleMemo.signature(lpsu, cycle) + (
            (lpsu.start_idx + lpsu._next_k) & self.phase_mask,)

    def _cycle_of(self, sig, seg):
        """Composite segment for the full phase cycle starting (and
        ending) at *sig*, or None while the chain is still open.

        The phase term makes a single epoch's end signature differ
        from its start (the phase advances every epoch), so no single
        recorded segment can self-loop.  Following the end-sig chain
        until it returns to *sig* and concatenating the segments
        yields one self-keying composite whose whole-period schedule
        the batch replayer can then repeat for every remaining epoch
        in a single call.  Composites are plain Segments: replay still
        validates every branch and miss live, so a stale composite
        (table cleared and re-recorded) degrades to an abort, never to
        a wrong schedule."""
        ent = self._comp.get(sig)
        if ent is not None and (ent[0] is not None
                                or ent[1] == len(self.table)):
            return ent[0]
        chain = [seg]
        s = seg.end_sig
        while s != sig and len(chain) < self._MAX_CHAIN:
            nxt = self.table.get(s)
            if nxt is None:
                break
            chain.append(nxt)
            s = nxt.end_sig
        comp = None
        if s == sig:
            cycles = []
            off = 0
            n_begins = 0
            for sg in chain:
                for dc, ops in sg.cycles:
                    cycles.append((dc + off, ops))
                off += sg.n_cycles
                n_begins += sg.n_begins
            comp = Segment(tuple(cycles), off, n_begins, sig)
        self._comp[sig] = (comp, len(self.table))
        return comp

    def _fn_for(self, lpsu, sig, seg, composite):
        bound = getattr(lpsu, "_turbo_fns", None)
        if bound is None:
            bound = lpsu._turbo_fns = {}
        key = (sig, composite)
        ent = bound.get(key)
        if ent is not None and ent[1] is seg:
            return ent[0]
        made = self._make.get(key)
        if made is None or made[1] is not seg:
            made = (_SegGen(lpsu, sig, seg, self.approx).build(), seg)
            self._make[key] = made
        mk = made[0]
        fn = mk(lpsu) if mk is not None else None
        bound[key] = (fn, seg)
        return fn

    def compiled(self, lpsu, sig, seg):
        use = seg
        if seg.end_sig != sig:
            remaining = lpsu.bound - lpsu.start_idx - lpsu._next_k
            comp = self._cycle_of(sig, seg)
            if comp is not None and comp.n_begins <= remaining:
                use = comp
        if use.end_sig != sig:
            # only self-keying segments repay compilation: anything
            # else replays at most once per anchor, which interpreted
            # replay handles at a fraction of the compile cost (this
            # covers cycle tails shorter than one whole phase period)
            return None
        fn = self._fn_for(lpsu, sig, use, use is not seg)
        if fn is None:
            return None
        return fn, use


# ---------------------------------------------------------------------------
# process-wide content-keyed memo cache
# ---------------------------------------------------------------------------

_TURBO_MEMOS = {}
_MAX_MEMOS = 64


def memo_content_key(descriptor, lpsu_cfg, gpp_cfg, approx=0.0):
    """Everything the compiled segments' source depends on.  Extends
    the fusion engine's content key with the MIV table and index
    register (iteration-setup constants are baked into compiled begin
    actions) and the full cache geometry (LRU maintenance is inlined).
    The approx flag separates approx memos from exact ones so approx
    replay can never serve an exact run."""
    d = descriptor
    mivt = tuple(sorted((m.reg, m.increment) for m in d.mivt.values()))
    return (_lpsu_content_key(d, lpsu_cfg, gpp_cfg), mivt, d.idx_reg,
            repr(gpp_cfg.cache), approx > 0.0)


def turbo_memo(descriptor, lpsu_cfg, gpp_cfg, approx=0.0):
    """Shared :class:`TurboMemo` for a loop's content key.

    Memos persist process-wide (like the fusion factory caches):
    segments hold validated schedule structure, never values, so a
    later invocation or simulator with an equal content key starts in
    steady state immediately instead of re-recording.
    """
    key = memo_content_key(descriptor, lpsu_cfg, gpp_cfg, approx)
    memo = _TURBO_MEMOS.get(key)
    if memo is None:
        if len(_TURBO_MEMOS) >= _MAX_MEMOS:
            _TURBO_MEMOS.clear()
        memo = _TURBO_MEMOS[key] = TurboMemo(
            gpp_cfg.cache.line_bytes, approx)
    return memo


def clear():
    """Drop all cached turbo memos (tests / cache invalidation)."""
    _TURBO_MEMOS.clear()
