"""Regenerate paper Table II: per-kernel loop characteristics and
traditional / specialized / adaptive speedups on io, ooo/2, ooo/4.

Expected shape (paper Section IV-B/C/D): traditional execution within
a few percent of the GP ISA for most kernels (worse for the
AMO-augmented worklist kernels); specialized execution always helps the
in-order GPP, with uc-dominated kernels in the 2-4x range; long-CIR
or-kernels and squash-heavy om-kernels lose to the out-of-order GPPs;
adaptive execution tracks the better engine.
"""

from conftest import run_once

from repro.eval import build_table2, geomean, render_table2


def test_table2(benchmark):
    rows = run_once(benchmark, build_table2, scale="small")
    print()
    print(render_table2(rows))

    # sanity over the whole table
    io_s = [r.speedups[("io", "S")] for r in rows]
    io_t = [r.speedups[("io", "T")] for r in rows]
    print("\ngeomean io:S speedup = %.2f" % geomean(io_s))
    print("geomean io:T overhead = %.2f" % geomean(io_t))
    uc_rows = [r for r in rows if r.loop_types[0] == "uc"
               and "db" not in r.loop_types]
    assert geomean([r.speedups[("io", "S")] for r in uc_rows]) > 2.0
    assert 0.9 < geomean(io_t) < 1.1
