"""Lexer for MiniC, the annotated C subset the XLOOPS compiler accepts.

MiniC covers what the paper's application kernels need: ``int`` /
``float`` / ``char`` scalars and pointers, fixed-size local arrays,
``for`` / ``while`` / ``if`` / ``else``, the usual operators, function
calls, AMO builtins, and ``#pragma xloops <annotation>`` directives
(``unordered``, ``ordered``, ``atomic`` — paper Section II-B).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


class CompileError(Exception):
    """Raised for any front-end or back-end compilation failure."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


KEYWORDS = frozenset({
    "void", "int", "float", "char", "if", "else", "for", "while",
    "return", "break", "continue",
})

#: multi-char operators, longest first
_OPERATORS = (
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
)

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<pragma>\#pragma[^\n]*)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>%s)
""" % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL)


@dataclass
class Token:
    kind: str          # 'int' | 'float' | 'char' | 'ident' | 'kw' |
    #                    'op' | 'pragma' | 'eof'
    text: str
    line: int
    value: object = None

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(source):
    """Tokenize MiniC *source*; returns a list ending with an EOF token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise CompileError("unexpected character %r" % source[pos], line)
        text = m.group(0)
        kind = m.lastgroup
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "pragma":
            tokens.append(Token("pragma", text.strip(), line))
        elif kind == "float":
            literal = text.rstrip("fF")
            tokens.append(Token("float", text, line, float(literal)))
        elif kind == "int":
            tokens.append(Token("int", text, line, int(text, 0)))
        elif kind == "char":
            body = text[1:-1]
            value = ord(body.encode().decode("unicode_escape"))
            tokens.append(Token("char", text, line, value))
        elif kind == "ident":
            tokens.append(Token(
                "kw" if text in KEYWORDS else "ident", text, line))
        else:
            tokens.append(Token("op", text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens
