"""Regenerate paper Table V: VLSI area and cycle time for the LPSU
configuration sweep (instruction buffer 96-192 entries, 2-8 lanes).

Expected shape: ~0.25 mm^2 scalar baseline; the primary four-lane
design adds ~40%; overhead grows roughly linearly with lanes (24-77%
over 2-8 lanes) and only mildly with IB capacity.
"""

from conftest import run_once

from repro.eval import build_table5, render_table5
from repro.vlsi import gpp_area, lpsu_area


def test_table5(benchmark):
    rows = run_once(benchmark, build_table5)
    print()
    print(render_table5(rows))
    base = gpp_area()
    primary = lpsu_area(lanes=4, ib_entries=128)
    assert 0.35 < primary.overhead_vs(base) < 0.50
