"""Per-cycle LPSU lane-occupancy tracing.

Attach a :class:`LaneTrace` to an :class:`~repro.uarch.lpsu.LPSU` and
every lane context marks what it did each cycle.  ``render()`` draws an
ASCII pipeline diagram — one row per lane context, one column per
cycle — which makes the paper's bottleneck stories (CIB serialization,
LSQ pressure, squash storms) directly visible:

    lane0  EEEMrrEEM.EEEM...
    lane1  .EEEMccccEEM..X..
           ^ E=execute M=memory r=RAW c=CIB q=LSQ w=commit X=squash

Use :func:`trace_specialized` for the one-call version: it runs the
first eligible xloop of a compiled kernel under specialized execution
and returns the rendered diagram.
"""

from __future__ import annotations

from typing import Dict, List, Optional

LEGEND = {
    "E": "execute (ALU/branch)",
    "M": "execute (memory)",
    "r": "RAW stall",
    "c": "CIB wait (cross-iteration register)",
    "m": "memory-port structural stall",
    "l": "LLFU structural stall",
    "q": "LSQ full / overlap stall",
    "w": "commit-order wait",
    "D": "store-buffer drain",
    "X": "squash",
    "|": "iteration boundary",
    ".": "idle",
}


class LaneTrace:
    """Records one mark per (context, cycle)."""

    def __init__(self, max_cycles=2000):
        self.max_cycles = max_cycles
        self._rows: Dict[int, Dict[int, str]] = {}
        self._ids: Dict[int, int] = {}
        self.cycles_seen = 0

    def _row(self, ctx):
        key = id(ctx)
        if key not in self._ids:
            self._ids[key] = len(self._ids)
            self._rows[self._ids[key]] = {}
        return self._rows[self._ids[key]]

    def mark(self, ctx, cycle, code, span=1):
        if cycle >= self.max_cycles:
            return
        if cycle + 1 > self.cycles_seen:
            self.cycles_seen = min(self.max_cycles, cycle + span)
        row = self._row(ctx)
        for c in range(cycle, min(cycle + span, self.max_cycles)):
            # don't let a later 'idle' overwrite a real event
            if c not in row or code != ".":
                row[c] = code

    def render(self, start=0, width=120):
        """ASCII diagram of cycles [start, start+width)."""
        if not self._rows:
            return "(no trace recorded)"
        end = min(start + width, self.cycles_seen)
        lines = []
        for row_id in sorted(self._rows):
            row = self._rows[row_id]
            chars = "".join(row.get(c, ".") for c in range(start, end))
            lines.append("lane%-2d %s" % (row_id, chars))
        used = sorted({ch for row in self._rows.values()
                       for ch in row.values()} | {"."})
        legend = "  ".join("%s=%s" % (ch, LEGEND.get(ch, "?"))
                           for ch in used)
        lines.append("cycles %d..%d   %s" % (start, end, legend))
        return "\n".join(lines)


def trace_specialized(program, entry, args, mem, lpsu_config=None,
                      latencies=None, max_cycles=2000):
    """Run *program* until its first eligible xloop, execute that loop
    on a traced LPSU, and return ``(LaneTrace, LPSUResult)``.

    The functional core runs traditionally up to the xloop; the loop
    itself executes specialized with tracing attached.
    """
    from ..sim.functional import FunctionalCore
    from .cache import L1Cache
    from .descriptor import ScanError, scan_loop
    from .lpsu import LPSU
    from .params import IO, LPSUConfig

    lpsu_config = lpsu_config or LPSUConfig()
    latencies = latencies or IO.latencies
    core = FunctionalCore(program, mem)
    core.setup_call(entry, args)
    cache = L1Cache(IO.cache)
    while not core.halted:
        instr = program.instr_at(core.pc)
        if instr.op.is_xloop:
            from ..sim.memory import to_s32
            taken = (to_s32(core.regs[instr.rs1])
                     < to_s32(core.regs[instr.rs2]))
            if taken:
                try:
                    desc = scan_loop(program, instr, core.regs)
                except ScanError:
                    desc = None
                if desc is not None and desc.body_len \
                        <= lpsu_config.ib_entries \
                        and lpsu_config.supports(desc.kind.data):
                    trace = LaneTrace(max_cycles=max_cycles)
                    lpsu = LPSU(desc, core.regs, mem, cache,
                                lpsu_config, trace=trace)
                    result = lpsu.run(latencies)
                    return trace, result
        core.step()
    raise ValueError("no eligible xloop reached by %r" % entry)
