"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures at the
``small`` workload scale and prints the reproduced rows/series (run
with ``pytest benchmarks/ --benchmark-only -s`` to see them).  The
experiment runner memoizes per process, so one full-table sweep feeds
the dependent figures.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
