"""Energy-model tests: event accounting, pricing, and the qualitative
relations the paper's Figs 8/10 depend on."""

import pytest
from hypothesis import given, strategies as st

from repro.energy import (EnergyEvents, EnergyTable, MCPAT_45NM, VLSI_40NM,
                          energy_breakdown, energy_nj, system_energy)
from repro.energy.mcpat import LMU_OVERHEAD


class TestEvents:
    def test_defaults_zero(self):
        assert EnergyEvents().total_events() == 0

    def test_add_accumulates(self):
        a = EnergyEvents(alu_op=3, rf_read=2)
        b = EnergyEvents(alu_op=1, dc_access=5)
        a.add(b)
        assert a.alu_op == 4
        assert a.dc_access == 5
        assert b.alu_op == 1

    def test_copy_is_independent(self):
        a = EnergyEvents(alu_op=3)
        c = a.copy()
        c.alu_op += 1
        assert a.alu_op == 3

    def test_as_dict_roundtrip(self):
        a = EnergyEvents(ic_access=7)
        assert a.as_dict()["ic_access"] == 7

    def test_repr_shows_nonzero_only(self):
        assert "alu_op" in repr(EnergyEvents(alu_op=1))
        assert "dc_access" not in repr(EnergyEvents(alu_op=1))


class TestPricing:
    def test_zero_events_zero_energy(self):
        assert energy_nj(EnergyEvents()) == 0.0

    def test_linear_in_counts(self):
        one = energy_nj(EnergyEvents(alu_op=1))
        ten = energy_nj(EnergyEvents(alu_op=10))
        assert ten == pytest.approx(10 * one)

    @given(n=st.integers(min_value=0, max_value=10 ** 6))
    def test_nonnegative(self, n):
        assert energy_nj(EnergyEvents(ic_access=n, dc_access=n)) >= 0.0

    def test_ib_access_about_10x_cheaper_than_icache(self):
        # headline VLSI observation (Section V-C)
        for table in (MCPAT_45NM, VLSI_40NM):
            assert table.ic_access / table.ib_read == pytest.approx(
                10.0, rel=0.25)

    def test_lmu_overhead_applied_to_lpsu_events(self):
        ev = EnergyEvents(ib_read=1000)
        bd = energy_breakdown(ev)
        assert "lmu_overhead" in bd
        assert bd["lmu_overhead"] == pytest.approx(
            bd["ib_read"] * LMU_OVERHEAD)

    def test_no_lmu_overhead_for_pure_gpp_run(self):
        ev = EnergyEvents(ic_access=1000, alu_op=500)
        assert "lmu_overhead" not in energy_breakdown(ev)

    def test_ooo_width_scales_bookkeeping(self):
        ev = EnergyEvents(rob_op=100, iq_op=100, ooo_rename=100)
        e2 = energy_nj(ev, ooo_width=2)
        e4 = energy_nj(ev, ooo_width=4)
        assert e4 == pytest.approx(2 * e2)

    def test_width_scale_only_hits_ooo_events(self):
        ev = EnergyEvents(alu_op=100)
        assert energy_nj(ev, ooo_width=4) == energy_nj(ev, ooo_width=0)

    def test_xi_priced_as_multiply(self):
        assert MCPAT_45NM.miv_mul == MCPAT_45NM.mul_op


class TestQualitativeShapes:
    def test_same_work_cheaper_from_ib_than_icache(self):
        """Executing N instructions from the LPSU instruction buffer
        must cost less than fetching them from the I-cache."""
        n = 10_000
        gpp = EnergyEvents(ic_access=n, alu_op=n, rf_read=2 * n,
                           rf_write=n)
        lpsu = EnergyEvents(ib_read=n, alu_op=n, rf_read=2 * n,
                            rf_write=n)
        assert energy_nj(lpsu) < energy_nj(gpp)

    def test_ooo_per_instruction_overhead_visible(self):
        n = 10_000
        base = EnergyEvents(ic_access=n, alu_op=n)
        ooo = base.copy()
        ooo.rob_op = n
        ooo.iq_op = n
        ooo.ooo_rename = n
        assert energy_nj(ooo, ooo_width=4) > 1.5 * energy_nj(base)


class TestSystemEnergy:
    def test_accepts_run_result(self):
        from repro.asm import assemble
        from repro.uarch import IO, OOO4, SystemConfig, simulate
        prog = assemble("""
main:
    li t0, 0
    li t1, 100
body:
    addi t0, t0, 1
    xloop.uc t0, t1, body
    ret
""")
        r_io = simulate(prog, SystemConfig("io", IO))
        r_o4 = simulate(prog, SystemConfig("ooo/4", OOO4))
        e_io = system_energy(r_io, SystemConfig("io", IO))
        e_o4 = system_energy(r_o4, SystemConfig("ooo/4", OOO4))
        assert e_o4 > e_io  # same work, fatter machine
