"""Ablation benches for the design choices DESIGN.md calls out:

* LSQ capacity 8 vs 16 (structural hazards on om/ua kernels)
* lane count 2/4/8 (cross-check of Table V / Fig 9)
* shared vs doubled memory port + LLFU
* xi enabled vs disabled (Fig 10's sgemm observation)
* adaptive profiling thresholds

Every point goes through the sweep executor as an ad-hoc
:class:`SystemConfig` (the runner accepts config objects as well as
names), so the whole ablation grid is cacheable and parallelizable
like the paper artifacts.
"""

from dataclasses import replace

from conftest import run_once

from repro.eval import render_table
from repro.eval.configs import ADAPTIVE, PRIMARY_LPSU
from repro.eval.parallel import SweepPoint, sweep
from repro.eval.runner import run
from repro.uarch import IO, OOO4, SystemConfig
from repro.uarch.params import AdaptiveConfig

_JOBS = None  # in-process; set to an int to fan the grid out


def _cfg(lpsu, gpp=IO, adaptive=ADAPTIVE, name="ablate"):
    return SystemConfig(name, gpp, lpsu=lpsu, adaptive=adaptive)


def _spec(kernel, lpsu, xi_enabled=True, schedule_cirs=False,
          mode="specialized", config=None):
    return run(kernel, config or _cfg(lpsu), mode=mode,
               xi_enabled=xi_enabled, schedule_cirs=schedule_cirs,
               scale="small")


def _point(kernel, lpsu, xi_enabled=True, schedule_cirs=False,
           mode="specialized", config=None):
    return SweepPoint(kernel, config or _cfg(lpsu), mode=mode,
                      xi_enabled=xi_enabled, schedule_cirs=schedule_cirs,
                      scale="small")


_LSQ_GRID = {"small": replace(PRIMARY_LPSU, lsq_loads=4, lsq_stores=4),
             "default": PRIMARY_LPSU,
             "big": replace(PRIMARY_LPSU, lsq_loads=16, lsq_stores=16)}
_ADAPTIVE_GRID = ((8, 100), (32, 400), (128, 1600))


def _all_points():
    """The full ablation grid, submitted through the executor."""
    points = []
    for kernel in ("dynprog-om", "btree-ua"):
        points += [_point(kernel, lpsu) for lpsu in _LSQ_GRID.values()]
    for kernel in ("rgb2cmyk-uc", "covar-or"):
        points += [_point(kernel, replace(PRIMARY_LPSU, lanes=k))
                   for k in (2, 4, 8)]
    points += [_point("rgb2cmyk-uc",
                      replace(PRIMARY_LPSU, lanes=k, mem_ports=2))
               for k in (2, 8)]
    for kernel in ("viterbi-uc", "sgemm-uc"):
        points += [_point(kernel, PRIMARY_LPSU),
                   _point(kernel, replace(PRIMARY_LPSU, mem_ports=2,
                                          llfus=2))]
    for kernel in ("rgb2cmyk-uc", "adpcm-or"):
        points += [_point(kernel, PRIMARY_LPSU, xi_enabled=True),
                   _point(kernel, PRIMARY_LPSU, xi_enabled=False)]
    for kernel, hand in (("dither-or", "dither-or-opt"),
                         ("sha-or", "sha-or-opt")):
        points += [_point(kernel, PRIMARY_LPSU),
                   _point(kernel, PRIMARY_LPSU, schedule_cirs=True),
                   _point(hand, PRIMARY_LPSU)]
    for kernel in ("dynprog-om", "ksack-sm-om"):
        points += [_point(kernel, PRIMARY_LPSU),
                   _point(kernel, replace(PRIMARY_LPSU,
                                          inter_lane_forwarding=True))]
    for iters, cycles_thr in _ADAPTIVE_GRID:
        points.append(_point(
            "sha-or", PRIMARY_LPSU, mode="adaptive",
            config=_cfg(PRIMARY_LPSU, gpp=OOO4,
                        adaptive=AdaptiveConfig(
                            profile_iters=iters,
                            profile_cycles=cycles_thr))))
    return points


def _sweep():
    sweep(_all_points(), jobs=_JOBS)  # prefills the memo
    rows = []

    # LSQ capacity (om/ua kernels)
    for kernel in ("dynprog-om", "btree-ua"):
        small = _spec(kernel, _LSQ_GRID["small"]).cycles
        default = _spec(kernel, _LSQ_GRID["default"]).cycles
        big = _spec(kernel, _LSQ_GRID["big"]).cycles
        rows.append(["lsq 4/8/16", kernel,
                     "%d / %d / %d" % (small, default, big)])
        assert big <= default <= small * 1.05

    # lanes
    for kernel in ("rgb2cmyk-uc", "covar-or"):
        cyc = [_spec(kernel, replace(PRIMARY_LPSU, lanes=k)).cycles
               for k in (2, 4, 8)]
        rows.append(["lanes 2/4/8", kernel,
                     "%d / %d / %d" % tuple(cyc)])
    # uc kernels scale with lanes; CIR-bound kernels do not
    uc = [_spec("rgb2cmyk-uc",
                replace(PRIMARY_LPSU, lanes=k, mem_ports=2)).cycles
          for k in (2, 8)]
    assert uc[1] < uc[0]

    # memory port / LLFU bandwidth
    for kernel in ("viterbi-uc", "sgemm-uc"):
        shared = _spec(kernel, PRIMARY_LPSU).cycles
        doubled = _spec(kernel, replace(PRIMARY_LPSU, mem_ports=2,
                                        llfus=2)).cycles
        rows.append(["ports+llfus x2", kernel,
                     "%d -> %d" % (shared, doubled)])
        assert doubled <= shared

    # xi encoding -- matters for kernels whose xloop body indexes
    # arrays by the induction variable directly (note: unlike the
    # paper's sgemm, our sgemm is insensitive because its induction
    # pointers live in *inner* plain loops, which legally strength-
    # reduce with plain adds whether or not xi exists)
    for kernel in ("rgb2cmyk-uc", "adpcm-or"):
        with_xi = _spec(kernel, PRIMARY_LPSU, xi_enabled=True)
        without = _spec(kernel, PRIMARY_LPSU, xi_enabled=False)
        rows.append(["xi on/off", kernel, "%d -> %d (instrs %d -> %d)"
                     % (with_xi.cycles, without.cycles,
                        with_xi.total_instrs, without.total_instrs)])
        assert without.total_instrs > with_xi.total_instrs

    # automatic CIR scheduling (Section IV-G automated): dither must
    # recover the full hand-optimized gain
    for kernel, hand in (("dither-or", "dither-or-opt"),
                         ("sha-or", "sha-or-opt")):
        base = _spec(kernel, PRIMARY_LPSU).cycles
        auto = _spec(kernel, PRIMARY_LPSU, schedule_cirs=True).cycles
        handc = _spec(hand, PRIMARY_LPSU).cycles
        rows.append(["auto-schedule", kernel,
                     "base %d -> auto %d (hand %d)"
                     % (base, auto, handc)])
        assert auto <= base

    # inter-lane store-load forwarding: never hurts, architecturally
    # identical (the window rarely opens at this scale -- commits
    # drain fast; see tests/uarch/test_extensions.py for a case where
    # it fires)
    for kernel in ("dynprog-om", "ksack-sm-om"):
        plain = _spec(kernel, PRIMARY_LPSU).cycles
        fwd = _spec(kernel, replace(PRIMARY_LPSU,
                                    inter_lane_forwarding=True)).cycles
        rows.append(["inter-lane fwd", kernel,
                     "%d -> %d" % (plain, fwd)])
        assert fwd <= plain * 1.05

    # adaptive profiling thresholds (sha-or on ooo/4+x: migrate back)
    for iters, cycles_thr in _ADAPTIVE_GRID:
        r = _spec("sha-or", PRIMARY_LPSU, mode="adaptive",
                  config=_cfg(PRIMARY_LPSU, gpp=OOO4,
                              adaptive=AdaptiveConfig(
                                  profile_iters=iters,
                                  profile_cycles=cycles_thr)))
        rows.append(["adaptive %d/%d" % (iters, cycles_thr), "sha-or",
                     "%d cycles" % r.cycles])
    return rows


def test_ablations(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(render_table(["Ablation", "Kernel", "Result"], rows,
                       title="Design-choice ablations"))
