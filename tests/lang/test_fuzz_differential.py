"""Differential fuzzing: randomly generated annotated loops must
produce identical architectural results when compiled for the GP ISA,
executed traditionally as an XLOOPS binary, and executed specialized
on the LPSU (across several LPSU configurations).

This exercises the whole stack at once: parser, dependence analysis,
pattern selection, strength reduction, register allocation, the
assembler, the functional model, and the LPSU's CIB/LSQ/squash
machinery.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

A, B, C = 0x100000, 0x180000, 0x200000
N = 24

LPSUS = (
    LPSUConfig(),
    LPSUConfig(lanes=2, lsq_loads=4, lsq_stores=4),
    LPSUConfig(lanes=8, mem_ports=2, llfus=2),
    LPSUConfig(inter_lane_forwarding=True),
)

# -- random expression / statement generators ------------------------------

_BINOPS = ("+", "-", "*", "&", "|", "^")


@st.composite
def _expr(draw, depth=0, vars_=("x", "y")):
    choice = draw(st.integers(0, 5 if depth < 2 else 2))
    if choice == 0:
        return str(draw(st.integers(-40, 40)))
    if choice == 1:
        return draw(st.sampled_from(vars_))
    if choice == 2:
        return "a[i]"
    op = draw(st.sampled_from(_BINOPS))
    left = draw(_expr(depth + 1, vars_))
    right = draw(_expr(depth + 1, vars_))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def uc_loop_body(draw):
    """Statements for an unordered body writing only b[i]/c[i]."""
    stmts = ["int x = a[i];", "int y = i * 3;"]
    n = draw(st.integers(1, 4))
    for k in range(n):
        e = draw(_expr())
        if draw(st.booleans()):
            stmts.append("x = %s;" % e)
        else:
            stmts.append("y = %s;" % e)
    if draw(st.booleans()):
        cond = draw(_expr())
        stmts.append("if (%s) { x = x + 1; } else { y = y - 2; }"
                     % cond)
    stmts.append("b[i] = x;")
    stmts.append("c[i] = y;")
    return "\n        ".join(stmts)


class TestUnorderedFuzz:
    @given(body=uc_loop_body(),
           data=st.lists(st.integers(-100, 100), min_size=N,
                         max_size=N))
    @settings(max_examples=25, deadline=None)
    def test_uc_loop_trimodal(self, body, data):
        src = """
void k(int* a, int* b, int* c, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        %s
    }
}""" % body
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional"),
                (compile_source(src), SystemConfig("io", IO),
                 "traditional")]
        runs += [(compile_source(src), SystemConfig("x", IO, lpsu),
                  "specialized") for lpsu in LPSUS]
        for compiled, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, [v & 0xFFFFFFFF for v in data])
            simulate(compiled.program, cfg, entry="k",
                     args=[A, B, C, N], mem=mem, mode=mode)
            outs.append((mem.read_words(B, N), mem.read_words(C, N)))
        assert all(o == outs[0] for o in outs[1:])


@st.composite
def or_loop_body(draw):
    """Ordered body with a CIR accumulator, possibly conditional."""
    update = draw(st.sampled_from((
        "acc = acc + a[i];",
        "acc = (acc ^ a[i]) + 1;",
        "if (a[i] > 0) { acc = acc + a[i]; }",
        "if ((a[i] & 1) == 0) { acc = acc * 3; } "
        "else { acc = acc - a[i]; }",
        "acc = acc + a[i]; acc = acc & 65535;",
    )))
    return update


class TestOrderedFuzz:
    @given(update=or_loop_body(),
           data=st.lists(st.integers(-50, 50), min_size=N, max_size=N),
           init=st.integers(-10, 10))
    @settings(max_examples=25, deadline=None)
    def test_or_loop_trimodal(self, update, data, init):
        src = """
int k(int* a, int* b, int n, int init) {
    int acc = init;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        %s
        b[i] = acc;
    }
    return acc;
}""" % update
        compiled = compile_source(src)
        assert compiled.loop_kinds()[0].startswith("xloop.or")
        results = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compiled, SystemConfig("x", IO, lpsu), "specialized")
                 for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, [v & 0xFFFFFFFF for v in data])
            r = simulate(cp.program, cfg, entry="k",
                         args=[A, B, N, init & 0xFFFFFFFF], mem=mem,
                         mode=mode)
            results.append((mem.read_words(B, N), r.return_value))
        assert all(r == results[0] for r in results[1:])


class TestMemoryOrderedFuzz:
    @given(stride=st.integers(1, 5),
           scale=st.integers(1, 3),
           data=st.lists(st.integers(0, 60), min_size=N + 8,
                         max_size=N + 8))
    @settings(max_examples=25, deadline=None)
    def test_om_recurrence_trimodal(self, stride, scale, data):
        # a[i] = a[i-stride] * scale + a[i] -- dependence distance is
        # the fuzzed stride, so squash behaviour varies per example
        src = """
void k(int* a, int n, int stride) {
    #pragma xloops ordered
    for (int i = stride; i < n; i++) {
        a[i] = a[i-stride] * %d + a[i];
    }
}""" % scale
        compiled = compile_source(src)
        assert compiled.loop_kinds() == ("xloop.om",)
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compiled, SystemConfig("x", IO, lpsu), "specialized")
                 for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, [v & 0xFFFFFFFF for v in data])
            simulate(cp.program, cfg, entry="k",
                     args=[A, N, stride], mem=mem, mode=mode)
            outs.append(mem.read_words(A, N))
        assert all(o == outs[0] for o in outs[1:])


class TestExitFuzz:
    @given(data=st.lists(st.integers(0, 30), min_size=N, max_size=N),
           threshold=st.integers(5, 120))
    @settings(max_examples=20, deadline=None)
    def test_de_loop_trimodal(self, data, threshold):
        src = """
int k(int* a, int* b, int n, int limit) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        acc = acc + a[i];
        b[i] = acc;
        if (acc > limit) { break; }
    }
    return acc;
}"""
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compile_source(src), SystemConfig("x", IO, lpsu),
                  "specialized") for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, data)
            r = simulate(cp.program, cfg, entry="k",
                         args=[A, B, N, threshold], mem=mem, mode=mode)
            outs.append((mem.read_words(B, N), r.return_value))
        assert all(o == outs[0] for o in outs[1:])


class TestAtomicFuzz:
    """Random histogram-style ua loops: per-bucket totals must equal a
    serial execution no matter how lanes interleave."""

    @given(data=st.lists(st.integers(0, 7), min_size=N, max_size=N),
           incr=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_ua_histogram_trimodal(self, data, incr):
        src = """
void k(int* d, int* h, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) {
        int s = d[i];
        h[s] = h[s] + %d;
        h[s + 8] = h[s + 8] + 1;
    }
}""" % incr
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compile_source(src), SystemConfig("x", IO, lpsu),
                  "specialized") for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, data)
            simulate(cp.program, cfg, entry="k", args=[A, B, N],
                     mem=mem, mode=mode)
            outs.append(mem.read_words(B, 16))
        assert all(o == outs[0] for o in outs[1:])
