"""Evaluation harness: named platform configurations, the memoizing
experiment runner, and generators for every table and figure in the
paper's evaluation."""

from .configs import (CONFIGS, BASELINE_OF, GPP_NAMES, XLOOPS_NAMES,
                      DESIGN_SPACE_NAMES, config)
from .runner import (KernelRun, run, baseline_run, speedup,
                     energy_efficiency, clear_cache)
from .parallel import (SweepExecutor, SweepPoint, SweepSummary, sweep,
                       table2_points, table4_points)
from .report import render_table, render_series, geomean
from .table2 import Table2Row, build_table2, build_row, render_table2
from .table3 import build_table3, render_table3
from .table4 import Table4Row, build_table4, render_table4, opt_improvements
from .table5 import build_table5, render_table5
from .figures import (fig5_data, render_fig5, fig6_data, render_fig6,
                      fig7_data, render_fig7, fig8_data, render_fig8,
                      Fig8Point, fig9_data, render_fig9, FIG9_KERNELS,
                      fig10_data, render_fig10, FIG10_KERNELS)
from .export import (run_to_dict, table2_to_dict, fig8_to_dict,
                     series_to_dict, table5_to_dict, save_json,
                     load_json)
from .paper_reference import (PAPER_IO_S, PAPER_OOO4_S_LOSERS,
                              PAPER_OOO4_S_WINNERS, ShapeComparison,
                              compare_table2, measured_io_s,
                              render_comparison)

__all__ = [
    "CONFIGS", "BASELINE_OF", "GPP_NAMES", "XLOOPS_NAMES",
    "DESIGN_SPACE_NAMES", "config", "KernelRun", "run", "baseline_run",
    "speedup", "energy_efficiency", "clear_cache", "SweepExecutor",
    "SweepPoint", "SweepSummary", "sweep", "table2_points",
    "table4_points", "render_table",
    "render_series", "geomean", "Table2Row", "build_table2", "build_row",
    "render_table2", "build_table3", "render_table3",
    "Table4Row", "build_table4", "render_table4",
    "opt_improvements", "build_table5", "render_table5", "fig5_data",
    "render_fig5", "fig6_data", "render_fig6", "fig7_data", "render_fig7",
    "fig8_data", "render_fig8", "Fig8Point", "fig9_data", "render_fig9",
    "FIG9_KERNELS", "fig10_data", "render_fig10", "FIG10_KERNELS",
    "run_to_dict", "table2_to_dict", "fig8_to_dict", "series_to_dict",
    "table5_to_dict", "save_json", "load_json", "PAPER_IO_S",
    "PAPER_OOO4_S_LOSERS", "PAPER_OOO4_S_WINNERS", "ShapeComparison",
    "compare_table2", "measured_io_s", "render_comparison",
]
